/**
 * @file
 * Figure 12: prediction accuracy for CloudSuite applications
 * co-located with SPEC batch applications on the Sandy Bridge-EN
 * server (paper Section IV-B2).
 *
 * Protocol: the latency-sensitive application runs 6 threads (SMT
 * experiment; one per core, siblings idle) or 3 threads (CMP
 * experiment; three cores idle). 1..6 (SMT) or 1..3 (CMP) instances
 * of a batch application fill the idle contexts/cores. Models are
 * trained on the odd-numbered SPEC benchmarks and tested on
 * co-locations with the even-numbered ones.
 */

#include "bench/common.h"
#include "core/parallel.h"

using namespace smite;

namespace {

void
runMode(core::Lab &lab, core::CoLocationMode mode, int threads,
        double paper_smite, double paper_pmu)
{
    const auto train = workload::spec2006::oddNumbered();
    const auto test = workload::spec2006::evenNumbered();

    std::printf("\n--- %s co-location: %d latency threads, 1..%d "
                "batch instances ---\n", core::modeName(mode), threads,
                threads);
    const core::SmiteModel smite = lab.trainSmite(train, mode);
    const core::PmuModel pmu = lab.trainPmu(train, mode);

    // Fan out everything the reporting loop needs: test-set and
    // CloudSuite characterizations, and the full (latency app, batch,
    // instance-count) measurement grid — all independent simulations.
    const auto clouds = workload::cloudsuite::all();
    lab.characterizeAll(test, mode);
    lab.pmuProfileAll(test);
    lab.characterizeAll(clouds, mode, threads);
    lab.pmuProfileAll(clouds);
    struct Task {
        const workload::WorkloadProfile *cloud;
        const workload::WorkloadProfile *batch;
        int instances;
    };
    std::vector<Task> grid;
    for (const auto &cloud : clouds) {
        for (const auto &batch : test) {
            for (int k = 1; k <= threads; ++k)
                grid.push_back(Task{&cloud, &batch, k});
        }
    }
    core::parallelFor(
        grid.size(),
        [&](std::size_t i) {
            lab.multiInstanceDegradation(*grid[i].cloud, threads,
                                         *grid[i].batch,
                                         grid[i].instances, mode);
        },
        lab.parallelism());

    std::printf("%-16s %8s %8s %8s %12s %10s\n", "latency app",
                "min deg", "avg deg", "max deg", "SMiTe err",
                "PMU err");
    double total_smite = 0, total_pmu = 0;
    for (const auto &cloud : workload::cloudsuite::all()) {
        const auto &cloud_char =
            lab.characterization(cloud, mode, threads);
        const auto cloud_pmu = lab.pmuProfile(cloud);

        double min_deg = 1e9, max_deg = -1e9, sum_deg = 0;
        double smite_err = 0, pmu_err = 0;
        int n = 0;
        for (const auto &batch : test) {
            const double pair_smite = smite.predict(
                cloud_char, lab.characterization(batch, mode));
            const double pair_pmu =
                pmu.predict(cloud_pmu, lab.pmuProfile(batch));
            for (int k = 1; k <= threads; ++k) {
                const double actual = lab.multiInstanceDegradation(
                    cloud, threads, batch, k, mode);
                const double p_smite =
                    core::Lab::scaleToInstances(pair_smite, k, threads);
                const double p_pmu =
                    core::Lab::scaleToInstances(pair_pmu, k, threads);
                min_deg = std::min(min_deg, actual);
                max_deg = std::max(max_deg, actual);
                sum_deg += actual;
                smite_err += std::abs(p_smite - actual);
                pmu_err += std::abs(p_pmu - actual);
                ++n;
            }
        }
        std::printf("%-16s %7.1f%% %7.1f%% %7.1f%% %11.2f%% %9.2f%%\n",
                    cloud.name.c_str(), 100 * min_deg,
                    100 * sum_deg / n, 100 * max_deg,
                    100 * smite_err / n, 100 * pmu_err / n);
        total_smite += smite_err / n;
        total_pmu += pmu_err / n;
    }
    const double apps = 4.0;
    std::printf("%-16s %26s %11.2f%% %9.2f%%\n", "AVERAGE", "",
                100 * total_smite / apps, 100 * total_pmu / apps);
    std::printf("paper: SMiTe %.2f%% vs PMU %.2f%%\n", paper_smite,
                paper_pmu);
}

} // namespace

int
main()
{
    bench::ReportScope obs_scope("bench_fig12_cloudsuite_prediction");
    bench::banner("Figure 12",
                  "CloudSuite prediction accuracy on Sandy Bridge-EN "
                  "(SMiTe vs PMU baseline)");

    core::Lab lab = bench::makeLab(sim::MachineConfig::sandyBridgeEN());
    runMode(lab, core::CoLocationMode::kSmt, 6, 1.79, 17.45);
    runMode(lab, core::CoLocationMode::kCmp, 3, 1.36, 27.01);

    bench::paperReference(
        "PMU model: 17.45% (SMT) / 27.01% (CMP) average error; "
        "SMiTe: 1.79% / 1.36%");
    return 0;
}
