/**
 * @file
 * Beyond the paper ("Figure 19"): static vs online SMiTe scheduling
 * under server churn.
 *
 * The paper's scale-out results (Figures 14-18) score a one-shot
 * placement. This harness runs the same cluster through decision
 * epochs with `server.fail` churn and compares three policies on the
 * final epoch's placement:
 *
 *   SMiTe-static   runPredictedPolicyWithFailures — the predicted
 *                  placement, re-placing evictions model-aware but
 *                  never reacting to delivered QoS
 *   SMiTe-online   OnlineScheduler — observes actual QoS each epoch,
 *                  evicts observed violators, probes observed
 *                  headroom (src/scheduler/online.h)
 *   Oracle         runOraclePolicy — perfect knowledge, no churn
 *                  (upper bound)
 *
 * Both churn policies replay the identical keyed failure trace, so
 * the comparison isolates the policy. With no SMITE_FAULTS in the
 * environment the harness arms a default churn plan
 * (server.fail: p=0.02, seed=101); either way every decision is a
 * pure function of the armed seed, so stdout is byte-identical
 * across runs and across SMITE_THREADS settings (the tier-1 smoke
 * pins this). Arm `scheduler.observe` to add measurement noise to
 * the online policy's QoS telemetry.
 */

#include "bench/scaleout.h"
#include "fault/fault.h"
#include "scheduler/online.h"

using namespace smite;

namespace {

constexpr int kEpochs = 20;

obs::json::Value
policyJson(const scheduler::PolicyResult &r)
{
    obs::json::Value v = obs::json::Value::object();
    v.set("policy", obs::json::Value(r.policy));
    v.set("utilization", obs::json::Value(r.utilization()));
    v.set("utilization_improvement",
          obs::json::Value(r.utilizationImprovement()));
    v.set("goodput_utilization",
          obs::json::Value(r.goodputUtilization()));
    v.set("goodput_improvement",
          obs::json::Value(r.goodputImprovement()));
    v.set("violation_rate", obs::json::Value(r.violationRate()));
    v.set("total_instances", obs::json::Value(r.totalInstances));
    v.set("down_servers", obs::json::Value(r.downServers));
    return v;
}

} // namespace

int
main()
{
    bench::ReportScope obs_scope("bench_fig19_online_policy");
    bench::banner("Figure 19 (beyond the paper)",
                  "Static vs online SMiTe co-location policy under "
                  "server churn (average-performance QoS)");

    core::Lab lab = bench::makeLab(sim::MachineConfig::sandyBridgeEN());
    const auto mode = core::CoLocationMode::kSmt;
    const core::SmiteModel model =
        lab.trainSmite(workload::spec2006::oddNumbered(), mode);
    const auto pairings = bench::buildAvgPerfPairings(
        lab, model, workload::cloudsuite::all(),
        workload::spec2006::evenNumbered());
    const scheduler::Cluster cluster(pairings,
                                     bench::namesOf(
                                         workload::cloudsuite::all()),
                                     bench::kServersPerApp);

    // Default churn plan when the environment armed nothing: ~2% of
    // servers fail per epoch, deterministically seeded.
    fault::FaultPlan &faults = fault::FaultPlan::global();
    if (!faults.armed("server.fail")) {
        faults.arm("server.fail",
                   fault::SiteSpec{.probability = 0.02, .seed = 101});
    }
    std::printf("churn: server.fail p=%.3f seed=%llu, %d decision "
                "epochs, %d servers\n\n",
                faults.spec("server.fail").probability,
                static_cast<unsigned long long>(
                    faults.spec("server.fail").seed),
                kEpochs, cluster.servers());

    const scheduler::OnlineScheduler online_policy(
        cluster, scheduler::OnlineConfig{.epochs = kEpochs});
    // Tolerance of two QoS points: tight enough that the trim pass
    // engages on the spreads this cluster actually exhibits.
    const scheduler::OnlineScheduler fairness_policy(
        cluster,
        scheduler::OnlineConfig{
            .epochs = kEpochs,
            .objective = scheduler::Objective::kFairness,
            .spreadTolerance = 0.02});

    // `util+` is raw utilization gain over the no-SMT baseline;
    // `good+` is the goodput gain, where instances on QoS-violating
    // servers count as wasted work. An over-packing policy can win on
    // raw utilization only by violating; goodput is what the cluster
    // actually delivers within SLA.
    std::printf("%-10s | %7s %7s %7s | %7s %7s %7s | %7s\n",
                "", "static", "", "", "online", "", "", "oracle");
    std::printf("%-10s | %7s %7s %7s | %7s %7s %7s | %7s\n",
                "QoS target", "util+%", "good+%", "viol%", "util+%",
                "good+%", "viol%", "good+%");
    int dominated = 0;
    scheduler::OnlineResult timeline_run;
    obs::json::Value by_target = obs::json::Value::array();
    struct FairnessRow {
        double target;
        scheduler::OnlineResult util;
        scheduler::OnlineResult fair;
    };
    std::vector<FairnessRow> fairness_rows;
    for (double target : {0.95, 0.90, 0.85}) {
        const auto fixed = cluster.runPredictedPolicyWithFailures(
            target, kEpochs, "SMiTe-static");
        auto online = online_policy.run(target);
        auto fair =
            fairness_policy.run(target, "SMiTe-online-fair");
        const auto oracle = cluster.runOraclePolicy(target);
        const bool dominates =
            online.final.violationRate() <= fixed.violationRate() &&
            online.final.goodputUtilization() >=
                fixed.goodputUtilization();
        dominated += dominates ? 1 : 0;
        std::printf("%9.0f%% | %6.2f%% %6.2f%% %6.2f%% | %6.2f%% "
                    "%6.2f%% %6.2f%% | %6.2f%%\n",
                    100 * target,
                    100 * fixed.utilizationImprovement(),
                    100 * fixed.goodputImprovement(),
                    100 * fixed.violationRate(),
                    100 * online.final.utilizationImprovement(),
                    100 * online.final.goodputImprovement(),
                    100 * online.final.violationRate(),
                    100 * oracle.goodputImprovement());

        obs::json::Value row = obs::json::Value::object();
        row.set("qos_target", obs::json::Value(target));
        row.set("static", policyJson(fixed));
        row.set("online", policyJson(online.final));
        row.set("online_fair", policyJson(fair.final));
        row.set("oracle", policyJson(oracle));
        by_target.push(std::move(row));
        FairnessRow frow{target, {}, std::move(fair)};
        if (target == 0.90) {
            frow.util = online;
            timeline_run = std::move(online);
        } else {
            frow.util = std::move(online);
        }
        fairness_rows.push_back(std::move(frow));
    }
    std::printf("\nonline beats static (lower violation rate at "
                "equal-or-better goodput) at %d/3 targets\n",
                dominated);

    // Fairness objective (MISE-Fair-style): how much max slowdown /
    // slowdown spread the extra trim pass buys, and what it costs in
    // goodput, at each target.
    std::printf("\nfairness objective vs utilization objective "
                "(final placement, actual QoS):\n");
    std::printf("%-10s | %8s %8s %7s | %8s %8s %7s\n", "",
                "util", "", "", "fairness", "", "");
    std::printf("%-10s | %8s %8s %7s | %8s %8s %7s\n", "QoS target",
                "maxslow%", "spread%", "good+%", "maxslow%",
                "spread%", "good+%");
    int fairness_wins = 0;
    obs::json::Value fairness_json = obs::json::Value::array();
    for (const FairnessRow &r : fairness_rows) {
        const bool wins = r.fair.finalMaxSlowdown <
                          r.util.finalMaxSlowdown;
        fairness_wins += wins ? 1 : 0;
        std::printf("%9.0f%% | %7.2f%% %7.2f%% %6.2f%% | %7.2f%% "
                    "%7.2f%% %6.2f%%\n",
                    100 * r.target,
                    100 * r.util.finalMaxSlowdown,
                    100 * r.util.finalSlowdownSpread,
                    100 * r.util.final.goodputImprovement(),
                    100 * r.fair.finalMaxSlowdown,
                    100 * r.fair.finalSlowdownSpread,
                    100 * r.fair.final.goodputImprovement());
        obs::json::Value row = obs::json::Value::object();
        row.set("qos_target", obs::json::Value(r.target));
        row.set("util_max_slowdown",
                obs::json::Value(r.util.finalMaxSlowdown));
        row.set("util_slowdown_spread",
                obs::json::Value(r.util.finalSlowdownSpread));
        row.set("fair_max_slowdown",
                obs::json::Value(r.fair.finalMaxSlowdown));
        row.set("fair_slowdown_spread",
                obs::json::Value(r.fair.finalSlowdownSpread));
        row.set("fair_fairness_evictions",
                obs::json::Value(
                    r.fair.timeline.empty()
                        ? 0
                        : r.fair.timeline.back().fairnessEvictions));
        fairness_json.push(std::move(row));
    }
    std::printf("fairness reduces max slowdown at %d/3 targets\n",
                fairness_wins);

    std::printf("\nepoch timeline at the 90%% target "
                "(utilization gain %%, online policy):\n");
    std::printf("%5s %6s %10s %8s %8s %7s %6s %6s %6s %5s\n", "epoch",
                "live", "instances", "util+%", "obsviol", "evict",
                "probe", "fail", "repl", "lost");
    obs::json::Value timeline = obs::json::Value::array();
    const double base =
        static_cast<double>(bench::kLatencyThreads) / 12.0;
    for (const scheduler::EpochStats &e : timeline_run.timeline) {
        std::printf("%5d %6d %10.0f %7.2f%% %8d %7d %6d %6d %6d %5d\n",
                    e.epoch, e.liveServers, e.totalInstances,
                    100 * (e.utilization - base) / base,
                    e.observedViolations, e.qosEvictions, e.probes,
                    e.failures, e.replacements, e.lostInstances);
        obs::json::Value row = obs::json::Value::object();
        row.set("epoch", obs::json::Value(e.epoch));
        row.set("live_servers", obs::json::Value(e.liveServers));
        row.set("total_instances",
                obs::json::Value(e.totalInstances));
        row.set("utilization", obs::json::Value(e.utilization));
        row.set("observed_violations",
                obs::json::Value(e.observedViolations));
        row.set("qos_evictions", obs::json::Value(e.qosEvictions));
        row.set("probes", obs::json::Value(e.probes));
        row.set("failures", obs::json::Value(e.failures));
        row.set("replacements", obs::json::Value(e.replacements));
        row.set("lost_instances",
                obs::json::Value(e.lostInstances));
        timeline.push(std::move(row));
    }

    bench::ReportScope::recordResult("by_target",
                                     std::move(by_target));
    bench::ReportScope::recordResult("timeline_t90",
                                     std::move(timeline));
    bench::ReportScope::recordResult("dominated_targets",
                                     obs::json::Value(dominated));
    bench::ReportScope::recordResult("fairness_by_target",
                                     std::move(fairness_json));
    bench::ReportScope::recordResult("fairness_wins",
                                     obs::json::Value(fairness_wins));

    bench::paperReference(
        "beyond the paper: an online, observation-driven variant of "
        "the Section IV-D scheduler; Navarro et al. and Subramanian "
        "et al. motivate reacting to observed interference over "
        "one-shot static decisions");
    return 0;
}
