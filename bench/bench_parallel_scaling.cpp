/**
 * @file
 * Parallel measurement-engine scaling harness: the Fig. 10 training
 * measurement phase (characterize every even-numbered SPEC benchmark
 * and measure all of its co-location pairs, SMT mode) run at 1, 2, 4
 * and 8 worker threads.
 *
 * Reports wall-clock time, speedup over the serial path, and the
 * number of simulations performed at each width, and verifies the
 * determinism contract: the assembled batch results must be
 * byte-identical at every thread count (exit status 1 otherwise).
 *
 * Simulated cycles per measurement default to a reduced interval so
 * the sweep finishes in minutes; override with SMITE_SCALING_WARMUP /
 * SMITE_SCALING_MEASURE (cycles) to reproduce the full-length runs.
 */

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/parallel.h"

using namespace smite;

namespace {

/** Full-precision serialization of the batch results. */
std::string
fingerprint(const std::vector<core::Characterization> &chars,
            const std::vector<std::vector<double>> &pairs)
{
    std::ostringstream out;
    out.precision(17);
    for (const auto &c : chars) {
        for (double v : c.sensitivity)
            out << v << " ";
        for (double v : c.contentiousness)
            out << v << " ";
        out << "\n";
    }
    for (const auto &row : pairs) {
        for (double v : row)
            out << v << " ";
        out << "\n";
    }
    return out.str();
}

/**
 * The Figures 14-17 measurement grid at one pool width: prefetch
 * every (latency, batch, instances) tuple in parallel, then assemble
 * the degradations serially from the warm cache. Returns the
 * full-precision fingerprint of the assembled grid.
 */
std::string
scaleoutFingerprint(core::Lab &lab,
                    const std::vector<workload::WorkloadProfile> &latency,
                    const std::vector<workload::WorkloadProfile> &batch,
                    int threads, int max_instances)
{
    const auto mode = core::CoLocationMode::kSmt;
    lab.multiInstancePrefetch(latency, threads, batch, max_instances,
                              mode);
    std::ostringstream out;
    out.precision(17);
    for (const auto &l : latency) {
        for (const auto &b : batch) {
            for (int k = 1; k <= max_instances; ++k) {
                out << lab.multiInstanceDegradation(l, threads, b, k,
                                                    mode)
                    << " ";
            }
            out << "\n";
        }
    }
    return out.str();
}

} // namespace

int
main()
{
    bench::ReportScope obs_scope("bench_parallel_scaling");
    bench::banner("Parallel scaling",
                  "Fig. 10 training measurements (even-numbered SPEC, "
                  "SMT) at 1/2/4/8 threads");

    const auto train = workload::spec2006::evenNumbered();
    const auto mode = core::CoLocationMode::kSmt;
    const sim::Cycle warmup =
        bench::envCycles("SMITE_SCALING_WARMUP", 10'000);
    const sim::Cycle measure =
        bench::envCycles("SMITE_SCALING_MEASURE", 40'000);

    std::printf("%zu workloads, warmup=%llu measure=%llu cycles, "
                "host reports %u hardware threads\n\n",
                train.size(), static_cast<unsigned long long>(warmup),
                static_cast<unsigned long long>(measure),
                std::thread::hardware_concurrency());

    std::printf("%8s %12s %9s %12s\n", "threads", "wall-clock",
                "speedup", "simulations");

    std::string reference;
    double serial_seconds = 0.0;
    bool identical = true;
    for (const int threads : {1, 2, 4, 8}) {
        // A fresh Lab per width: cold caches, no disk cache, so every
        // width performs the same measurement work.
        core::Lab lab(sim::MachineConfig::ivyBridge(), warmup, measure);
        lab.setParallelism(threads);

        const auto t0 = std::chrono::steady_clock::now();
        const auto chars = lab.characterizeAll(train, mode);
        const auto pairs = lab.measureAllPairs(train, mode);
        const auto t1 = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(t1 - t0).count();

        if (threads == 1) {
            reference = fingerprint(chars, pairs);
            serial_seconds = seconds;
        } else if (fingerprint(chars, pairs) != reference) {
            identical = false;
        }
        std::printf("%8d %11.2fs %8.2fx %12llu\n", threads, seconds,
                    serial_seconds / seconds,
                    static_cast<unsigned long long>(
                        lab.stats().total()));
        obs_scope.report().addTiming(
            "threads_" + std::to_string(threads) + "_s", seconds);
    }
    bench::ReportScope::recordResult("byte_identical",
                                     obs::json::Value(identical));

    std::printf("\nparallel outputs byte-identical to serial: %s\n",
                identical ? "yes" : "NO — DETERMINISM VIOLATION");

    // The Figures 14-17 scale-out grid (multi-instance co-location
    // tuples fanned out via multiInstancePrefetch) must honour the
    // same contract: the grid assembled after a parallel prefetch is
    // byte-identical to the serial measurement order. A reduced grid
    // keeps the sweep in bench territory — 2 latency apps, 4 batch
    // apps, up to 4 instances on the 6-core Sandy Bridge EN.
    const auto &cloud = workload::cloudsuite::all();
    const std::vector<workload::WorkloadProfile> latency(
        cloud.begin(), cloud.begin() + 2);
    const std::vector<workload::WorkloadProfile> batch_apps(
        train.begin(), train.begin() + 4);
    const int grid_threads = 4;
    const int grid_instances = 4;

    std::printf("\nscale-out grid (%zux%zux%d tuples):\n",
                latency.size(), batch_apps.size(), grid_instances);
    std::printf("%8s %12s %12s\n", "threads", "wall-clock",
                "simulations");
    std::string grid_reference;
    bool grid_identical = true;
    for (const int threads : {1, 4}) {
        core::Lab lab(sim::MachineConfig::sandyBridgeEN(), warmup,
                      measure);
        lab.setParallelism(threads);
        const auto t0 = std::chrono::steady_clock::now();
        const std::string fp = scaleoutFingerprint(
            lab, latency, batch_apps, grid_threads, grid_instances);
        const auto t1 = std::chrono::steady_clock::now();
        if (threads == 1)
            grid_reference = fp;
        else if (fp != grid_reference)
            grid_identical = false;
        std::printf("%8d %11.2fs %12llu\n", threads,
                    std::chrono::duration<double>(t1 - t0).count(),
                    static_cast<unsigned long long>(
                        lab.stats().total()));
    }
    bench::ReportScope::recordResult(
        "scaleout_byte_identical", obs::json::Value(grid_identical));
    std::printf("scale-out grid byte-identical to serial: %s\n",
                grid_identical ? "yes" : "NO — DETERMINISM VIOLATION");

    bench::paperReference(
        "the paper's offline characterization phase is embarrassingly "
        "parallel; SMiTe amortizes it across the fleet");
    return identical && grid_identical ? 0 : 1;
}
