/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses.
 *
 * Each bench binary regenerates one table or figure of the paper and
 * prints our measured series next to the values the paper reports.
 * Expensive co-location measurements are shared between binaries
 * through the Lab disk cache (one file per machine configuration in
 * the working directory; delete the files to re-measure).
 */

#ifndef SMITE_BENCH_COMMON_H
#define SMITE_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/smite.h"

namespace smite::bench {

/** Cache-file name for a machine configuration. */
inline std::string
cacheFileFor(const sim::MachineConfig &config)
{
    std::string tag = config.microarchitecture;
    for (char &c : tag) {
        if (c == ' ' || c == '-')
            c = '_';
    }
    return "smite_lab_cache_" + tag + ".txt";
}

/**
 * Build a Lab with the shared disk cache enabled. (Returned as a
 * prvalue — the Lab is non-movable since its caches carry locks.)
 */
inline core::Lab
makeLab(const sim::MachineConfig &config)
{
    return core::Lab(config, cacheFileFor(config));
}

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *what)
{
    std::printf("================================================="
                "=============\n");
    std::printf("SMiTe reproduction | %s\n", experiment);
    std::printf("%s\n", what);
    std::printf("================================================="
                "=============\n");
}

/** Print a labelled paper-reference line. */
inline void
paperReference(const char *text)
{
    std::printf("paper reference: %s\n", text);
}

/**
 * The Figures 10/11 protocol: train SMiTe and the PMU baseline on
 * the even-numbered SPEC benchmarks, evaluate on all ordered pairs
 * of the odd-numbered ones, and print per-benchmark measured
 * degradation plus both models' average absolute prediction error.
 */
inline void
runSpecPredictionExperiment(core::Lab &lab, core::CoLocationMode mode,
                            double paper_smite, double paper_pmu)
{
    const auto train = workload::spec2006::evenNumbered();
    const auto test = workload::spec2006::oddNumbered();

    std::printf("training SMiTe + PMU models on the %zu even-numbered "
                "benchmarks (%s co-location, %d threads)...\n",
                train.size(), core::modeName(mode), lab.parallelism());
    const core::SmiteModel smite = lab.trainSmite(train, mode);
    const core::PmuModel pmu = lab.trainPmu(train, mode);

    // Fan the test-set measurements out before the reporting loop so
    // the serial printing below runs entirely on cache hits.
    lab.characterizeAll(test, mode);
    lab.pmuProfileAll(test);
    lab.measureAllPairs(test, mode);

    std::printf("\nSMiTe coefficients c_i:");
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        std::printf(" %s=%.3f",
                    rulers::dimensionName(
                        rulers::kAllDimensions[d]).data(),
                    smite.coefficients()[d]);
    }
    std::printf("  c0=%.4f\n\n", smite.constantTerm());

    std::printf("%-16s %12s %12s %12s\n", "benchmark",
                "measured deg", "SMiTe err", "PMU err");
    double total_measured = 0, total_smite = 0, total_pmu = 0;
    for (const auto &victim : test) {
        double measured = 0, smite_err = 0, pmu_err = 0;
        int n = 0;
        for (const auto &aggressor : test) {
            if (victim.name == aggressor.name)
                continue;
            const double actual =
                lab.pairDegradation(victim, aggressor, mode);
            const double p_smite =
                smite.predict(lab.characterization(victim, mode),
                              lab.characterization(aggressor, mode));
            const double p_pmu = pmu.predict(
                lab.pmuProfile(victim), lab.pmuProfile(aggressor));
            measured += actual;
            smite_err += std::abs(p_smite - actual);
            pmu_err += std::abs(p_pmu - actual);
            ++n;
        }
        measured /= n;
        smite_err /= n;
        pmu_err /= n;
        std::printf("%-16s %11.2f%% %11.2f%% %11.2f%%\n",
                    victim.name.c_str(), 100 * measured,
                    100 * smite_err, 100 * pmu_err);
        total_measured += measured;
        total_smite += smite_err;
        total_pmu += pmu_err;
    }
    const double n = static_cast<double>(test.size());
    std::printf("%-16s %11.2f%% %11.2f%% %11.2f%%\n", "AVERAGE",
                100 * total_measured / n, 100 * total_smite / n,
                100 * total_pmu / n);
    std::printf("\npaper: SMiTe %.2f%% vs PMU %.2f%% average error\n",
                paper_smite, paper_pmu);
}

} // namespace smite::bench

#endif // SMITE_BENCH_COMMON_H
