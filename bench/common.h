/**
 * @file
 * Shared plumbing for the figure/table reproduction harnesses.
 *
 * Each bench binary regenerates one table or figure of the paper and
 * prints our measured series next to the values the paper reports.
 * Expensive co-location measurements are shared between binaries
 * through the Lab disk cache (one file per machine configuration in
 * the working directory; delete the files to re-measure).
 */

#ifndef SMITE_BENCH_COMMON_H
#define SMITE_BENCH_COMMON_H

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/parallel.h"
#include "core/smite.h"
#include "obs/obs.h"

namespace smite::bench {

/** Positive integer environment override, else @p fallback. */
inline sim::Cycle
envCycles(const char *name, sim::Cycle fallback)
{
    if (const char *env = std::getenv(name)) {
        char *end = nullptr;
        const long long v = std::strtoll(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<sim::Cycle>(v);
    }
    return fallback;
}

/**
 * Simulation intervals for the harnesses: the paper-length defaults,
 * or the SMITE_BENCH_WARMUP / SMITE_BENCH_MEASURE environment
 * overrides (cycles) for quick smoke runs.
 */
inline sim::Cycle
benchWarmupCycles()
{
    return envCycles("SMITE_BENCH_WARMUP", sim::kDefaultWarmupCycles);
}

/** @copydoc benchWarmupCycles */
inline sim::Cycle
benchMeasureCycles()
{
    return envCycles("SMITE_BENCH_MEASURE", sim::kDefaultMeasureCycles);
}

/**
 * Cache-file name for a machine configuration. Runs at non-default
 * simulation intervals get their own cache files — measurements taken
 * at different intervals must never mix.
 */
inline std::string
cacheFileFor(const sim::MachineConfig &config)
{
    std::string tag = config.microarchitecture;
    for (char &c : tag) {
        if (c == ' ' || c == '-')
            c = '_';
    }
    const sim::Cycle warmup = benchWarmupCycles();
    const sim::Cycle measure = benchMeasureCycles();
    if (warmup != sim::kDefaultWarmupCycles ||
        measure != sim::kDefaultMeasureCycles) {
        tag += "_w" + std::to_string(warmup) + "_m" +
               std::to_string(measure);
    }
    return "smite_lab_cache_" + tag + ".txt";
}

/**
 * Build a Lab with the shared disk cache enabled. (Returned as a
 * prvalue — the Lab is non-movable since its caches carry locks.)
 */
inline core::Lab
makeLab(const sim::MachineConfig &config)
{
    return core::Lab(config, cacheFileFor(config),
                     benchWarmupCycles(), benchMeasureCycles());
}

/**
 * Per-harness observability scope: declare one at the top of main().
 *
 * Wraps the whole run in a `bench.run` trace span and, at scope exit,
 * emits the structured artifacts next to the harness's stdout —
 * `<name>.report.json` (schema `smite-run-report/1`, carrying config,
 * phase timings, recorded results and a metrics-registry snapshot)
 * whenever SMITE_METRICS or SMITE_TRACE is set, plus
 * `<name>.trace.json` (Chrome trace_event, open in Perfetto) when
 * SMITE_TRACE is set. With both variables unset nothing is written —
 * harness behaviour and output stay byte-identical.
 */
class ReportScope
{
  public:
    /** @param name harness identifier, conventionally the binary name. */
    explicit ReportScope(const char *name)
        : report_(name), start_(std::chrono::steady_clock::now()),
          start_us_(obs::TraceSession::global().nowMicros())
    {
        instance_ = this;
        report_.setConfig("threads",
                          obs::json::Value(core::defaultThreadCount()));
        report_.setConfig("warmup_cycles",
                          obs::json::Value(benchWarmupCycles()));
        report_.setConfig("measure_cycles",
                          obs::json::Value(benchMeasureCycles()));
    }

    ~ReportScope() { finish(); }

    ReportScope(const ReportScope &) = delete;
    ReportScope &operator=(const ReportScope &) = delete;

    /** The active scope, or nullptr outside an instrumented harness. */
    static ReportScope *instance() { return instance_; }

    /** The report under construction. */
    obs::RunReport &report() { return report_; }

    /** Record a result on the active scope, if any (shared helpers). */
    static void
    recordResult(const std::string &key, obs::json::Value value)
    {
        if (instance_ != nullptr)
            instance_->report_.addResult(key, std::move(value));
    }

    /** Emit the artifacts now (idempotent; the destructor calls it). */
    void
    finish()
    {
        if (finished_)
            return;
        finished_ = true;
        instance_ = nullptr;
        const double total_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        report_.addTiming("total_s", total_s);
        // A run that absorbed measurement failures advertises itself
        // as partial, with the incident list attached: a degraded
        // chaos run must never masquerade as a clean one.
        if (obs::IncidentLog::global().count() > 0)
            report_.markPartial(obs::IncidentLog::global().snapshot());
        if (obs::traceEnabled()) {
            // The whole-run span is recorded here rather than by a
            // Span destructor, which would fire only after the trace
            // file had already been written.
            obs::TraceSession &session = obs::TraceSession::global();
            session.record("bench.run", start_us_,
                           session.nowMicros() - start_us_,
                           report_.name());
            const std::string trace_path =
                report_.name() + ".trace.json";
            if (obs::TraceSession::global().writeTo(trace_path))
                std::fprintf(stderr, "smite: trace written to %s\n",
                             trace_path.c_str());
        }
        if (obs::metricsEnabled() || obs::traceEnabled()) {
            const std::string report_path =
                report_.name() + ".report.json";
            if (report_.writeTo(report_path))
                std::fprintf(stderr, "smite: report written to %s\n",
                             report_path.c_str());
        }
    }

  private:
    inline static ReportScope *instance_ = nullptr;

    obs::RunReport report_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t start_us_;
    bool finished_ = false;
};

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *what)
{
    std::printf("================================================="
                "=============\n");
    std::printf("SMiTe reproduction | %s\n", experiment);
    std::printf("%s\n", what);
    std::printf("================================================="
                "=============\n");
}

/** Print a labelled paper-reference line. */
inline void
paperReference(const char *text)
{
    std::printf("paper reference: %s\n", text);
}

/**
 * The Figures 10/11 protocol: train SMiTe and the PMU baseline on
 * the even-numbered SPEC benchmarks, evaluate on all ordered pairs
 * of the odd-numbered ones, and print per-benchmark measured
 * degradation plus both models' average absolute prediction error.
 */
inline void
runSpecPredictionExperiment(core::Lab &lab, core::CoLocationMode mode,
                            double paper_smite, double paper_pmu)
{
    const auto train = workload::spec2006::evenNumbered();
    const auto test = workload::spec2006::oddNumbered();

    if (ReportScope *scope = ReportScope::instance()) {
        scope->report().setConfig(
            "machine",
            obs::json::Value(lab.machine().config().microarchitecture));
    }

    std::printf("training SMiTe + PMU models on the %zu even-numbered "
                "benchmarks (%s co-location, %d threads)...\n",
                train.size(), core::modeName(mode), lab.parallelism());
    const core::SmiteModel smite = lab.trainSmite(train, mode);
    const core::PmuModel pmu = lab.trainPmu(train, mode);

    // Fan the test-set measurements out before the reporting loop so
    // the serial printing below runs entirely on cache hits.
    lab.characterizeAll(test, mode);
    lab.pmuProfileAll(test);
    lab.measureAllPairs(test, mode);

    std::printf("\nSMiTe coefficients c_i:");
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        std::printf(" %s=%.3f",
                    rulers::dimensionName(
                        rulers::kAllDimensions[d]).data(),
                    smite.coefficients()[d]);
    }
    std::printf("  c0=%.4f\n\n", smite.constantTerm());

    std::printf("%-16s %12s %12s %12s\n", "benchmark",
                "measured deg", "SMiTe err", "PMU err");
    obs::json::Value per_benchmark = obs::json::Value::array();
    double total_measured = 0, total_smite = 0, total_pmu = 0;
    int skipped_pairs = 0;
    for (const auto &victim : test) {
        double measured = 0, smite_err = 0, pmu_err = 0;
        int n = 0;
        for (const auto &aggressor : test) {
            if (victim.name == aggressor.name)
                continue;
            // A pair whose measurement failed past the Lab's retry
            // budget is skipped (and the run reported partial) rather
            // than aborting the whole evaluation.
            try {
                const double actual =
                    lab.pairDegradation(victim, aggressor, mode);
                const double p_smite = smite.predict(
                    lab.characterization(victim, mode),
                    lab.characterization(aggressor, mode));
                const double p_pmu = pmu.predict(
                    lab.pmuProfile(victim), lab.pmuProfile(aggressor));
                measured += actual;
                smite_err += std::abs(p_smite - actual);
                pmu_err += std::abs(p_pmu - actual);
                ++n;
            } catch (const fault::MeasurementError &err) {
                ++skipped_pairs;
                obs::IncidentLog::global().record(
                    "evaluation: skipped pair " + victim.name + "|" +
                    aggressor.name + ": " + err.what());
            }
        }
        if (n == 0) {
            std::printf("%-16s %12s %12s %12s\n", victim.name.c_str(),
                        "(no data)", "-", "-");
            continue;
        }
        measured /= n;
        smite_err /= n;
        pmu_err /= n;
        std::printf("%-16s %11.2f%% %11.2f%% %11.2f%%\n",
                    victim.name.c_str(), 100 * measured,
                    100 * smite_err, 100 * pmu_err);
        obs::json::Value row = obs::json::Value::object();
        row.set("benchmark", obs::json::Value(victim.name));
        row.set("measured_degradation", obs::json::Value(measured));
        row.set("smite_error", obs::json::Value(smite_err));
        row.set("pmu_error", obs::json::Value(pmu_err));
        per_benchmark.push(std::move(row));
        total_measured += measured;
        total_smite += smite_err;
        total_pmu += pmu_err;
    }
    if (skipped_pairs > 0) {
        std::printf("(%d test pair%s skipped after measurement "
                    "failures)\n",
                    skipped_pairs, skipped_pairs == 1 ? "" : "s");
        ReportScope::recordResult("skipped_pairs",
                                  obs::json::Value(skipped_pairs));
    }
    const double n = static_cast<double>(test.size());
    std::printf("%-16s %11.2f%% %11.2f%% %11.2f%%\n", "AVERAGE",
                100 * total_measured / n, 100 * total_smite / n,
                100 * total_pmu / n);
    std::printf("\npaper: SMiTe %.2f%% vs PMU %.2f%% average error\n",
                paper_smite, paper_pmu);

    // Replay audit: re-derive every test-set measurement in a fresh
    // Lab with no disk cache. Its machine runs replay the run-level
    // snapshots recorded by the fan-out above (machine.replay.hits in
    // the metrics snapshot counts them), and a replayed run is
    // contractually bit-equal to a live one — so this line is
    // byte-identical with SMITE_SIM_MEMO=0, where the audit simply
    // re-simulates.
    {
        core::Lab audit(lab.machine().config(), benchWarmupCycles(),
                        benchMeasureCycles());
        audit.characterizeAll(test, mode);
        audit.measureAllPairs(test, mode);
        double max_diff = 0;
        int audited = 0, audit_skipped = 0;
        for (const auto &victim : test) {
            for (const auto &aggressor : test) {
                if (victim.name == aggressor.name)
                    continue;
                try {
                    const double replayed =
                        audit.pairDegradation(victim, aggressor, mode);
                    const double original =
                        lab.pairDegradation(victim, aggressor, mode);
                    max_diff = std::max(
                        max_diff, std::abs(replayed - original));
                    ++audited;
                } catch (const fault::MeasurementError &err) {
                    ++audit_skipped;
                    obs::IncidentLog::global().record(
                        "replay audit: skipped pair " + victim.name +
                        "|" + aggressor.name + ": " + err.what());
                }
            }
        }
        std::printf("replay audit: %d test pairs re-derived in a "
                    "fresh lab, max |replayed - live| = %.17g\n",
                    audited, max_diff);
        if (audit_skipped > 0) {
            std::printf("(%d audit pair%s skipped after measurement "
                        "failures)\n",
                        audit_skipped, audit_skipped == 1 ? "" : "s");
        }
        ReportScope::recordResult("replay_audit_pairs",
                                  obs::json::Value(audited));
        ReportScope::recordResult("replay_audit_max_diff",
                                  obs::json::Value(max_diff));
        if (audit_skipped > 0) {
            ReportScope::recordResult(
                "replay_audit_skipped",
                obs::json::Value(audit_skipped));
        }
    }

    ReportScope::recordResult("mode", obs::json::Value(
                                          core::modeName(mode)));
    ReportScope::recordResult("per_benchmark",
                              std::move(per_benchmark));
    ReportScope::recordResult("avg_measured_degradation",
                              obs::json::Value(total_measured / n));
    ReportScope::recordResult("smite_avg_error",
                              obs::json::Value(total_smite / n));
    ReportScope::recordResult("pmu_avg_error",
                              obs::json::Value(total_pmu / n));
    ReportScope::recordResult("paper_smite_avg_error_pct",
                              obs::json::Value(paper_smite));
    ReportScope::recordResult("paper_pmu_avg_error_pct",
                              obs::json::Value(paper_pmu));
}

} // namespace smite::bench

#endif // SMITE_BENCH_COMMON_H
