/**
 * @file
 * Figure 5: cumulative distribution of the aggregated utilization of
 * the memory ports (2 and 3 = loads, 4 = stores) across all SPEC
 * CPU2006 SMT co-location pairs.
 */

#include <map>

#include "bench/common.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_fig05_mem_port_utilization");
    bench::banner("Figure 5",
                  "Aggregated memory-port utilization CDFs over all "
                  "SPEC SMT co-location pairs");

    core::Lab lab = bench::makeLab(sim::MachineConfig::ivyBridge());
    const auto &apps = workload::spec2006::all();

    std::map<int, std::vector<double>> samples;
    for (size_t i = 0; i < apps.size(); ++i) {
        for (size_t j = i + 1; j < apps.size(); ++j) {
            const auto u = lab.pairPortUtilization(
                apps[i], apps[j], core::CoLocationMode::kSmt);
            for (int port : {2, 3, 4})
                samples[port].push_back(u[port]);
        }
    }

    for (int port : {2, 3, 4}) {
        const char *role = port == 4 ? "stores" : "loads";
        std::printf("\nport %d (%s) aggregated utilization CDF "
                    "(%zu pairs):\n", port, role,
                    samples[port].size());
        std::printf("  %8s %8s\n", "util", "F(util)");
        for (const auto &[x, p] :
             stats::empiricalCdf(samples[port], 11)) {
            std::printf("  %7.1f%% %8.2f\n", 100 * x, p);
        }
        std::printf("  median %.1f%%\n",
                    100 * stats::quantile(samples[port], 0.5));
    }

    const double load_median =
        (stats::quantile(samples[2], 0.5) +
         stats::quantile(samples[3], 0.5)) / 2;
    const double store_median = stats::quantile(samples[4], 0.5);
    std::printf("\nmedian load-port utilization %.1f%% vs store port "
                "%.1f%%\n", 100 * load_median, 100 * store_median);

    bench::paperReference(
        "the memory store port (port 4) is heavily underutilized "
        "compared to the load ports");
    return 0;
}
