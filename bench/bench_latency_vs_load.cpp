/**
 * @file
 * Beyond the paper: latency-vs-load knees and load-aware admission.
 *
 * The paper's admission question — "can this co-location still meet
 * its tail-latency QoS?" — is answered at one design load. The
 * production-relevant quantity is the *knee*: the max offered QPS at
 * which the percentile target still holds under the co-location's
 * interference (cf. the slowdown-estimation and hardware-QoS
 * enforcement framing in PAPERS.md). Three parts:
 *
 *  1. a stepped open-loop rate sweep (mutated-style) over the DES,
 *     showing the hockey-stick latency curve of one co-location;
 *  2. a knee table: loadgen::findKnee per (service, interference
 *     level, co-location depth), searched in parallel with
 *     core::parallelFor — knees must be monotone nonincreasing in
 *     co-location depth and in per-instance degradation (the
 *     predicted-QoS ordering), and the harness exits nonzero if not;
 *  3. a load-aware OnlineScheduler scenario: the Web-Search knee
 *     rows feed scheduler::LoadAwareConfig; best-effort fillers pack
 *     the idle contexts at the base load and are shed — never
 *     guaranteed instances — when keyed `des.arrival_burst` spikes
 *     double the offered load; guaranteed tiers are sized so the
 *     spike stays under their knee (zero load violations, asserted).
 *
 * Everything is keyed; stdout carries no timings, so runs are
 * byte-identical across repeats and SMITE_THREADS settings (the
 * tier-1 smoke pins this, clean and under a pinned `des.*` chaos
 * plan). The machine-readable knees and scenario aggregates go to
 * BENCH_load.json (schema `smite-run-report/1`; argv[1] overrides
 * the path), diffed against the committed baseline in tier-1.
 */

#include <iterator>
#include <string>
#include <vector>

#include "bench/common.h"
#include "fault/fault.h"
#include "loadgen/knee.h"
#include "scheduler/online.h"

using namespace smite;

namespace {

/** One latency service whose knees we map. */
struct Service {
    const char *name;
    double lambda;    ///< design arrival rate (QPS)
    double mu;        ///< solo service rate (QPS)
    double targetP95; ///< tail-latency target (s)
};

/** One interference level: per-instance throughput degradation. */
struct Level {
    const char *name;
    double degPerInstance;
};

constexpr Service kServices[] = {
    {"Web-Search", 800.0, 2000.0, 0.006},
    {"Data-Caching", 8000.0, 20000.0, 0.0006},
};
constexpr Level kLevels[] = {
    {"light", 0.04},
    {"medium", 0.08},
    {"heavy", 0.13},
};
constexpr int kMaxDepth = 6;

/** Shared request-window shape of every probe and sweep step. */
loadgen::SweepConfig
probeTemplate(const Service &svc)
{
    loadgen::SweepConfig cfg;
    cfg.arrival.kind = loadgen::ArrivalKind::kPoisson;
    cfg.arrival.seed = 17;
    cfg.servers.seed = 17;
    cfg.preRequests = 2000;
    cfg.measureRequests = 20000;
    cfg.postRequests = 500;
    cfg.percentile = 0.95;
    cfg.servers.serviceRates = {svc.mu};
    return cfg;
}

/** Knee of @p svc at @p depth co-located instances of @p lvl. */
loadgen::KneeResult
kneeOf(const Service &svc, const Level &lvl, int depth)
{
    const double deg = lvl.degPerInstance * depth;
    loadgen::KneeConfig cfg;
    cfg.probe = probeTemplate(svc);
    cfg.probe.servers.serviceRates = {(1.0 - deg) * svc.mu};
    cfg.targetLatency = svc.targetP95;
    cfg.qpsLo = 0.05 * svc.mu;
    cfg.tolerance = 0.002 * svc.mu;
    // Chaos runs arm `des.drop`; keyed drops are identical at every
    // probed rate, so they do not break the search's monotonicity —
    // the latency target alone decides.
    cfg.failOnDrop = false;
    return loadgen::findKnee(cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_load.json";
    bench::ReportScope obs_scope("bench_latency_vs_load");
    bench::banner("Latency vs load (beyond the paper)",
                  "open-loop knee finding and load-aware admission");
    obs::RunReport report("bench_latency_vs_load");

    // --- 1. Stepped sweep: the latency-vs-load curve ---------------
    // Web-Search under 10% degradation, two DES server instances,
    // least-loaded balancing — the hockey stick the knee search
    // bisects. Offered load is per the whole pool.
    {
        const Service &svc = kServices[0];
        loadgen::SweepConfig sweep = probeTemplate(svc);
        sweep.servers.serviceRates = {0.9 * svc.mu, 0.9 * svc.mu};
        sweep.startQps = 400.0;
        sweep.stepSize = 400.0;
        sweep.stepStop = 3200.0;
        const loadgen::SweepResult result = loadgen::runSweep(sweep);

        std::printf("\nstepped sweep: %s, deg 10%%, 2 servers "
                    "(p95 target %.1f ms)\n",
                    svc.name, 1e3 * svc.targetP95);
        std::printf("%10s %12s %12s %10s %8s\n", "offered", "p95",
                    "mean", "achieved", "dropped");
        for (const auto &s : result.steps) {
            std::printf("%9.0f %11.3fms %11.3fms %9.0f %8llu\n",
                        s.offeredQps, 1e3 * s.percentileValue,
                        1e3 * s.meanResponse, s.achievedQps,
                        static_cast<unsigned long long>(s.dropped));
        }
    }

    // --- 2. Knee table ---------------------------------------------
    // One (service, level) combo per parallelFor index; results are
    // assembled by index, so the table (and stdout) is byte-identical
    // across SMITE_THREADS settings.
    constexpr std::size_t kServiceCount = std::size(kServices);
    constexpr std::size_t kLevelCount = std::size(kLevels);
    std::vector<std::vector<double>> knees(
        kServiceCount * kLevelCount,
        std::vector<double>(kMaxDepth + 1, 0.0));
    core::parallelFor(knees.size(), [&](std::size_t i) {
        const Service &svc = kServices[i / kLevelCount];
        const Level &lvl = kLevels[i % kLevelCount];
        for (int d = 0; d <= kMaxDepth; ++d)
            knees[i][d] = kneeOf(svc, lvl, d).kneeQps;
    });

    int monotonicity_failures = 0;
    std::printf("\nknee QPS by co-location depth (p95 target held)\n");
    std::printf("%-14s %-8s %-7s", "service", "level", "deg/inst");
    for (int d = 0; d <= kMaxDepth; ++d)
        std::printf(" %7s%d", "d", d);
    std::printf("\n");
    for (std::size_t i = 0; i < knees.size(); ++i) {
        const Service &svc = kServices[i / kLevelCount];
        const Level &lvl = kLevels[i % kLevelCount];
        std::printf("%-14s %-8s %7.2f", svc.name, lvl.name,
                    lvl.degPerInstance);
        for (int d = 0; d <= kMaxDepth; ++d) {
            std::printf(" %8.0f", knees[i][d]);
            report.addResult("knee." + std::string(svc.name) + "." +
                                 lvl.name + ".d" + std::to_string(d),
                             obs::json::Value(knees[i][d]));
            // Deeper co-location (more predicted degradation) can
            // never raise the knee.
            if (d > 0 && knees[i][d] > knees[i][d - 1]) {
                ++monotonicity_failures;
                std::printf(" <NON-MONOTONE depth>");
            }
            // Same depth, heavier per-instance degradation: ditto.
            if (i % kLevelCount > 0 && d > 0 &&
                knees[i][d] > knees[i - 1][d]) {
                ++monotonicity_failures;
                std::printf(" <NON-MONOTONE level>");
            }
        }
        std::printf("\n");
    }
    std::printf("knee monotonicity (in depth and in degradation): "
                "%s\n",
                monotonicity_failures == 0 ? "ok" : "VIOLATED");

    // --- 3. Load-aware online scheduling under load spikes ---------
    // A Web-Search cluster whose servers pair with light/medium/heavy
    // batch apps. The measured knee rows above become the scheduler's
    // admission table; `des.arrival_burst` doubles the offered load
    // on keyed (epoch, server) picks.
    const double kQosTarget = 0.90;
    const double kBaseQps = 400.0;
    const int kEpochs = 12;

    std::vector<scheduler::Pairing> pairings;
    std::vector<std::vector<double>> knee_table;
    for (std::size_t l = 0; l < kLevelCount; ++l) {
        scheduler::Pairing p;
        p.latencyApp = kServices[0].name;
        p.batchApp = kLevels[l].name;
        for (int k = 1; k <= kMaxDepth; ++k) {
            const double qos =
                1.0 - kLevels[l].degPerInstance * static_cast<double>(k);
            p.byInstances.push_back(
                scheduler::CoLocationOption{qos, qos});
        }
        pairings.push_back(std::move(p));
        knee_table.push_back(knees[l]); // Web-Search rows
    }
    const scheduler::Cluster cluster(pairings, {kServices[0].name},
                                     300);

    fault::FaultPlan &faults = fault::FaultPlan::global();
    if (!faults.armed("des.arrival_burst")) {
        faults.arm("des.arrival_burst",
                   fault::SiteSpec{.probability = 0.10,
                                   .seed = 303,
                                   .sigma = 0.5});
    }
    std::printf("\nload-aware scheduling: %d servers, base %.0f QPS, "
                "2x spikes via des.arrival_burst (p=%.2f seed=%llu), "
                "%d epochs, QoS target %.2f\n",
                cluster.servers(), kBaseQps,
                faults.spec("des.arrival_burst").probability,
                static_cast<unsigned long long>(
                    faults.spec("des.arrival_burst").seed),
                kEpochs, kQosTarget);

    scheduler::OnlineConfig on_cfg;
    on_cfg.epochs = kEpochs;
    on_cfg.loadAware.enabled = true;
    on_cfg.loadAware.baseQps = kBaseQps;
    on_cfg.loadAware.spikeFactor = 2.0;
    on_cfg.loadAware.kneeByPairing = knee_table;
    const scheduler::OnlineScheduler policy(cluster, on_cfg);
    const scheduler::OnlineResult run = policy.run(kQosTarget);

    scheduler::OnlineConfig off_cfg;
    off_cfg.epochs = kEpochs;
    const scheduler::OnlineScheduler baseline(cluster, off_cfg);
    const scheduler::OnlineResult base_run = baseline.run(kQosTarget);

    std::printf("%6s %8s %8s %10s %10s %10s\n", "epoch", "spikes",
                "shed", "fillers", "guaranteed", "loadviol");
    int spikes_total = 0, shed_total = 0, load_violations = 0;
    for (const auto &e : run.timeline) {
        std::printf("%6d %8d %8d %10.0f %10.0f %10d\n", e.epoch,
                    e.loadSpikes, e.fillersShed, e.fillerInstances,
                    e.totalInstances, e.loadViolations);
        spikes_total += e.loadSpikes;
        shed_total += e.fillersShed;
        load_violations += e.loadViolations;
    }
    const auto &last = run.timeline.back();
    std::printf("\nfinal: utilization %.4f (load-aware, incl. "
                "fillers) vs %.4f (baseline), guaranteed violation "
                "rate %.4f\n",
                last.utilization,
                base_run.timeline.back().utilization,
                run.final.violationRate());

    const bool sheds_under_spikes = spikes_total > 0 && shed_total > 0;
    std::printf("spikes %d, fillers shed %d, guaranteed-tier load "
                "violations %d -> %s\n",
                spikes_total, shed_total, load_violations,
                sheds_under_spikes && load_violations == 0
                    ? "graceful degradation: ok"
                    : "FAILED");

    report.addResult("scenario.load_spikes",
                     obs::json::Value(spikes_total));
    report.addResult("scenario.fillers_shed",
                     obs::json::Value(shed_total));
    report.addResult("scenario.load_violations",
                     obs::json::Value(load_violations));
    report.addResult("scenario.final_filler_instances",
                     obs::json::Value(last.fillerInstances));
    report.addResult("scenario.final_guaranteed_instances",
                     obs::json::Value(last.totalInstances));
    report.addResult("scenario.final_utilization",
                     obs::json::Value(last.utilization));
    report.addResult(
        "scenario.baseline_utilization",
        obs::json::Value(base_run.timeline.back().utilization));
    report.addResult("scenario.guaranteed_violation_rate",
                     obs::json::Value(run.final.violationRate()));

    if (!report.writeTo(out_path))
        return 1;
    std::printf("report written to %s\n", out_path.c_str());

    bench::paperReference(
        "not in the paper; motivated by the max-load-under-QoS "
        "framing of shared-resource management work (PAPERS.md)");
    return monotonicity_failures == 0 && sheds_under_spikes &&
                   load_violations == 0
               ? 0
               : 1;
}
