/**
 * @file
 * Table I: machine specifications of the experimental setup.
 */

#include "bench/common.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_table1_machines");
    bench::banner("Table I",
                  "Machine specifications of the simulated platforms");

    std::printf("%-32s %-18s %-8s %6s %6s %10s\n", "Processor",
                "Microarchitecture", "Kernel", "Cores", "SMT",
                "L3");
    for (const auto &config : {sim::MachineConfig::sandyBridgeEN(),
                               sim::MachineConfig::ivyBridge()}) {
        std::printf("%-32s %-18s %-8s %6d %6d %8lluMB\n",
                    config.name.c_str(),
                    config.microarchitecture.c_str(),
                    config.kernel.c_str(), config.numCores,
                    config.contextsPerCore,
                    static_cast<unsigned long long>(
                        config.l3.sizeBytes >> 20));
    }

    std::printf("\nCore model shared by both platforms:\n");
    const sim::CoreConfig core;
    std::printf("  fetch %d/cycle (shared), issue %d/context, "
                "%d/core, window %d uops, sched depth %d, %d MSHRs\n",
                sim::MachineConfig().core.fetchWidth,
                core.issuePerContext, core.issuePerCore,
                core.windowSize, core.schedDepth, core.mshrs);
    const sim::MachineConfig generic;
    std::printf("  L1I %lluKB/%d-way, L1D %lluKB/%d-way, "
                "L2 %lluKB/%d-way (private per core)\n",
                static_cast<unsigned long long>(
                    generic.l1i.sizeBytes >> 10),
                generic.l1i.assoc,
                static_cast<unsigned long long>(
                    generic.l1d.sizeBytes >> 10),
                generic.l1d.assoc,
                static_cast<unsigned long long>(
                    generic.l2.sizeBytes >> 10),
                generic.l2.assoc);
    std::printf("  DRAM: %llu-cycle idle latency, %llu cycles/line "
                "channel occupancy\n",
                static_cast<unsigned long long>(
                    generic.dram.accessLatency),
                static_cast<unsigned long long>(
                    generic.dram.occupancyPerLine));

    bench::paperReference(
        "Intel Xeon E5-2420 @ 1.90GHz (Sandy Bridge-EN, kernel 3.8.0) "
        "and Intel i7-3770 @ 3.40GHz (Ivy Bridge, kernel 3.8.0)");
    return 0;
}
