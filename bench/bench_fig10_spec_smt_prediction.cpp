/**
 * @file
 * Figure 10: performance prediction accuracy for SMT co-location on
 * SPEC CPU2006 (Ivy Bridge; train on even-numbered benchmarks, test
 * on odd-numbered pairs).
 */

#include "bench/common.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_fig10_spec_smt_prediction");
    bench::banner("Figure 10",
                  "SMT co-location prediction accuracy on SPEC "
                  "CPU2006 (SMiTe vs PMU baseline)");
    core::Lab lab = bench::makeLab(sim::MachineConfig::ivyBridge());
    bench::runSpecPredictionExperiment(lab, core::CoLocationMode::kSmt,
                                       2.80, 13.55);
    bench::paperReference(
        "measured degradations span 11.74-53.14%; PMU model averages "
        "13.55% error, SMiTe 2.80%");
    return 0;
}
