/**
 * @file
 * Ablation (beyond the paper's figures, supporting its central
 * claim): how much does the *multidimensional* decoupling matter?
 *
 *  - "L3-only" restricts the model to the single memory-pressure
 *    dimension — the Bubble-Up-style monotonic metric the paper
 *    argues is insufficient for SMT.
 *  - "FU-only" keeps the four functional-unit dimensions.
 *  - "mem-only" keeps the three cache dimensions.
 *  - "full" is SMiTe's seven-dimension model.
 *  - "no-c0" drops the constant term of Equation 3.
 */

#include <cmath>

#include "bench/common.h"
#include "stats/regression.h"

using namespace smite;

namespace {

/** Fit Eq. 3 on a subset of dimensions and report test error. */
double
subsetError(core::Lab &lab, const std::vector<int> &dims,
            bool with_intercept)
{
    const auto mode = core::CoLocationMode::kSmt;
    const auto train = workload::spec2006::evenNumbered();
    const auto test = workload::spec2006::oddNumbered();

    auto features = [&](const workload::WorkloadProfile &a,
                        const workload::WorkloadProfile &b) {
        const auto &ca = lab.characterization(a, mode);
        const auto &cb = lab.characterization(b, mode);
        std::vector<double> x;
        for (int d : dims)
            x.push_back(ca.sensitivity[d] * cb.contentiousness[d]);
        if (!with_intercept)
            x.push_back(0.0);  // placeholder keeps shapes aligned
        return x;
    };

    std::vector<std::vector<double>> x_train;
    std::vector<double> y_train;
    for (const auto &a : train) {
        for (const auto &b : train) {
            if (a.name == b.name)
                continue;
            x_train.push_back(features(a, b));
            y_train.push_back(lab.pairDegradation(a, b, mode));
        }
    }
    // Note: when with_intercept is false we emulate it by forcing the
    // intercept toward zero with a huge ridge on a dummy column; the
    // simpler route is to subtract nothing and fit through origin via
    // a plain least-squares on the features only.
    const stats::LinearModel model =
        stats::LinearModel::fit(x_train, y_train, 1e-8);

    double err = 0;
    int n = 0;
    for (const auto &a : test) {
        for (const auto &b : test) {
            if (a.name == b.name)
                continue;
            const double actual = lab.pairDegradation(a, b, mode);
            double predicted = model.predict(features(a, b));
            if (!with_intercept)
                predicted -= model.intercept();
            err += std::abs(predicted - actual);
            ++n;
        }
    }
    return err / n;
}

} // namespace

int
main()
{
    bench::ReportScope obs_scope("bench_ablation_dimensions");
    bench::banner("Ablation",
                  "Prediction error vs modeled dimension subsets "
                  "(SPEC, SMT co-location)");

    core::Lab lab = bench::makeLab(sim::MachineConfig::ivyBridge());

    // All five cases reuse the same characterizations and pair
    // measurements; fan them out once up front.
    const auto mode = core::CoLocationMode::kSmt;
    lab.characterizeAll(workload::spec2006::evenNumbered(), mode);
    lab.characterizeAll(workload::spec2006::oddNumbered(), mode);
    lab.measureAllPairs(workload::spec2006::evenNumbered(), mode);
    lab.measureAllPairs(workload::spec2006::oddNumbered(), mode);

    struct Case {
        const char *name;
        std::vector<int> dims;
        bool intercept;
    };
    const std::vector<Case> cases = {
        {"L3-only (Bubble-Up-like)", {6}, true},
        {"FU-only (4 dims)", {0, 1, 2, 3}, true},
        {"mem-only (3 dims)", {4, 5, 6}, true},
        {"full SMiTe (7 dims)", {0, 1, 2, 3, 4, 5, 6}, true},
        {"full, no c0", {0, 1, 2, 3, 4, 5, 6}, false},
    };

    std::printf("%-28s %16s\n", "model", "avg test error");
    for (const Case &c : cases) {
        std::printf("%-28s %15.2f%%\n", c.name,
                    100 * subsetError(lab, c.dims, c.intercept));
    }

    bench::paperReference(
        "a single monotonic metric (Bubble-Up) fails to capture the "
        "multidimensionality of SMT resource sharing; decoupled "
        "dimensions are required (Section I / Finding 9)");
    return 0;
}
