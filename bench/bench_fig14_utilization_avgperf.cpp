/**
 * @file
 * Figure 14: cluster utilization improvement when SMT co-location is
 * allowed under average-performance QoS targets of 95/90/85%, for
 * the SMiTe-steered scheduler vs the Oracle.
 *
 * Cluster: 4,000 servers, 1,000 per CloudSuite application, each
 * half-loaded (6 of 12 contexts). Batch candidates come from the
 * even-numbered SPEC benchmarks (the models are trained on the
 * odd-numbered ones).
 */

#include "bench/scaleout.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_fig14_utilization_avgperf");
    bench::banner("Figure 14",
                  "Utilization improvement under average-performance "
                  "QoS targets (SMiTe vs Oracle)");

    core::Lab lab = bench::makeLab(sim::MachineConfig::sandyBridgeEN());
    const auto mode = core::CoLocationMode::kSmt;
    const auto train = workload::spec2006::oddNumbered();
    const auto batch = workload::spec2006::evenNumbered();
    const auto &latency = workload::cloudsuite::all();

    const core::SmiteModel model = lab.trainSmite(train, mode);
    const auto pairings =
        bench::buildAvgPerfPairings(lab, model, latency, batch);
    const scheduler::Cluster cluster(pairings, bench::namesOf(latency),
                                     bench::kServersPerApp);

    const double paper_smite[] = {9.24, 25.90, 42.97};
    const double paper_oracle[] = {9.82, 26.78, 43.75};
    const double targets[] = {0.95, 0.90, 0.85};

    std::printf("%-10s %16s %16s %14s %14s\n", "QoS target",
                "SMiTe util gain", "Oracle util gain", "paper SMiTe",
                "paper Oracle");
    for (int i = 0; i < 3; ++i) {
        const auto smite = cluster.runPredictedPolicy(targets[i]);
        const auto oracle = cluster.runOraclePolicy(targets[i]);
        std::printf("%9.0f%% %15.2f%% %15.2f%% %13.2f%% %13.2f%%\n",
                    100 * targets[i],
                    100 * smite.utilizationImprovement(),
                    100 * oracle.utilizationImprovement(),
                    paper_smite[i], paper_oracle[i]);
    }

    bench::paperReference(
        "SMiTe improves utilization by 9.24/25.90/42.97% at "
        "95/90/85% QoS targets, close to Oracle's 9.82/26.78/43.75%");
    return 0;
}
