/**
 * @file
 * Figure 17: QoS violations under tail-latency QoS, SMiTe vs the
 * Random policy at matched utilization. Violation magnitudes use
 * latency-overshoot normalization, which exceeds 100% for deep
 * violations (the queueing effect amplifies small degradation
 * mistakes into large latency overshoots).
 */

#include "bench/scaleout.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_fig17_violations_tail");
    bench::banner("Figure 17",
                  "QoS violations: SMiTe vs Random at matched "
                  "utilization (90th-percentile latency QoS)");

    core::Lab lab = bench::makeLab(sim::MachineConfig::sandyBridgeEN());
    const auto mode = core::CoLocationMode::kSmt;
    const core::SmiteModel model =
        lab.trainSmite(workload::spec2006::oddNumbered(), mode);

    std::vector<workload::WorkloadProfile> latency = {
        workload::cloudsuite::byName("Web-Search"),
        workload::cloudsuite::byName("Data-Caching")};
    const auto pairings = bench::buildTailPairings(
        lab, model, latency, workload::spec2006::evenNumbered());
    scheduler::Cluster cluster(pairings, bench::namesOf(latency),
                               2 * bench::kServersPerApp);
    cluster.useLatencyOvershootNorm(true);

    std::printf("%-10s %14s %14s %14s %14s\n", "QoS target",
                "SMiTe viol%", "Random viol%", "SMiTe max mag",
                "Random max mag");
    for (double target : {0.95, 0.90, 0.85}) {
        const auto smite = cluster.runPredictedPolicy(target);
        const auto random =
            cluster.runRandomPolicy(target, smite.totalInstances);
        std::printf("%9.0f%% %13.2f%% %13.2f%% %13.2f%% %13.2f%%\n",
                    100 * target, 100 * smite.violationRate(),
                    100 * random.violationRate(),
                    100 * smite.maxViolation,
                    100 * random.maxViolation);
    }

    bench::paperReference(
        "Random suffers up to 110% violations (latency overshoot); "
        "the most serious SMiTe violation is 0.96%");
    return 0;
}
