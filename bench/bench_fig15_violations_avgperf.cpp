/**
 * @file
 * Figure 15: QoS violations under the SMiTe policy vs an
 * interference-oblivious Random policy that achieves the same
 * utilization gain (average-performance QoS).
 */

#include "bench/scaleout.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_fig15_violations_avgperf");
    bench::banner("Figure 15",
                  "QoS violations: SMiTe vs Random at matched "
                  "utilization (average-performance QoS)");

    core::Lab lab = bench::makeLab(sim::MachineConfig::sandyBridgeEN());
    const auto mode = core::CoLocationMode::kSmt;
    const core::SmiteModel model =
        lab.trainSmite(workload::spec2006::oddNumbered(), mode);
    const auto pairings = bench::buildAvgPerfPairings(
        lab, model, workload::cloudsuite::all(),
        workload::spec2006::evenNumbered());
    const scheduler::Cluster cluster(pairings,
                                     bench::namesOf(
                                         workload::cloudsuite::all()),
                                     bench::kServersPerApp);

    std::printf("%-10s %14s %14s %14s %14s\n", "QoS target",
                "SMiTe viol%", "Random viol%", "SMiTe max mag",
                "Random max mag");
    double reduction_sum = 0;
    int reduction_n = 0;
    for (double target : {0.95, 0.90, 0.85}) {
        const auto smite = cluster.runPredictedPolicy(target);
        const auto random = cluster.runRandomPolicy(
            target, smite.totalInstances);
        std::printf("%9.0f%% %13.2f%% %13.2f%% %13.2f%% %13.2f%%\n",
                    100 * target, 100 * smite.violationRate(),
                    100 * random.violationRate(),
                    100 * smite.maxViolation,
                    100 * random.maxViolation);
        if (random.violationRate() > 0) {
            reduction_sum += 1.0 - smite.violationRate() /
                                       random.violationRate();
            ++reduction_n;
        }
    }
    if (reduction_n > 0) {
        std::printf("\naverage violation reduction vs Random: %.2f%%\n",
                    100 * reduction_sum / reduction_n);
    }

    bench::paperReference(
        "Random suffers up to 26% QoS violations at matched "
        "utilization; SMiTe's worst violation is 1.67%, a 78.57% "
        "average reduction");
    return 0;
}
