/**
 * @file
 * Machine-model ablation (design-choice study from DESIGN.md §6):
 * how the optional microarchitectural features change the
 * interference landscape the Rulers measure.
 *
 *  - next-line prefetching recovers streaming throughput and shifts
 *    contention from latency to bandwidth;
 *  - an inclusive L3 adds inclusion-victim interference, making
 *    cache-resident applications more sensitive to L3 pressure.
 */

#include "bench/common.h"
#include "core/parallel.h"

using namespace smite;

namespace {

struct Variant {
    const char *name;
    sim::MachineConfig config;
};

double
soloIpc(const sim::Machine &machine,
        const workload::WorkloadProfile &app)
{
    workload::ProfileUopSource source(app);
    return machine.runSolo(source).ipc();
}

double
pairDeg(const sim::Machine &machine,
        const workload::WorkloadProfile &victim,
        const workload::WorkloadProfile &aggressor)
{
    const double solo = soloIpc(machine, victim);
    workload::ProfileUopSource a(victim, 1), b(aggressor, 2);
    const auto counters = machine.runPairSmt(a, b);
    return (solo - counters[0].ipc()) / solo;
}

} // namespace

int
main()
{
    bench::ReportScope obs_scope("bench_ablation_machine");
    bench::banner("Machine ablation",
                  "Prefetching and L3 inclusion vs interference "
                  "behaviour");

    sim::MachineConfig base = sim::MachineConfig::ivyBridge();
    sim::MachineConfig prefetch = base;
    prefetch.l2NextLinePrefetch = true;
    sim::MachineConfig inclusive = base;
    inclusive.inclusiveL3 = true;
    sim::MachineConfig both = prefetch;
    both.inclusiveL3 = true;

    const std::vector<Variant> variants = {
        {"baseline", base},
        {"+prefetch", prefetch},
        {"+inclusive L3", inclusive},
        {"+both", both},
    };

    const auto &lbm = workload::spec2006::byName("470.lbm");
    const auto &libq = workload::spec2006::byName("462.libquantum");
    const auto &calculix = workload::spec2006::byName("454.calculix");
    const auto &omnetpp = workload::spec2006::byName("471.omnetpp");

    std::printf("%-16s %10s %10s %16s %18s\n", "variant",
                "lbm IPC", "libq IPC", "lbm|lbm deg",
                "calculix|omnetpp");
    // The variants are independent measurements on independent
    // machine clones; fan them out and print in order afterwards.
    struct Row {
        double lbm_ipc, libq_ipc, lbm_deg, mix_deg;
    };
    std::vector<Row> rows(variants.size());
    core::parallelFor(variants.size(), [&](std::size_t i) {
        const sim::Machine machine =
            sim::Machine(variants[i].config).clone();
        rows[i] = Row{soloIpc(machine, lbm), soloIpc(machine, libq),
                      pairDeg(machine, lbm, lbm),
                      pairDeg(machine, calculix, omnetpp)};
    });
    for (std::size_t i = 0; i < variants.size(); ++i) {
        std::printf("%-16s %10.3f %10.3f %15.1f%% %17.1f%%\n",
                    variants[i].name, rows[i].lbm_ipc, rows[i].libq_ipc,
                    100 * rows[i].lbm_deg, 100 * rows[i].mix_deg);
    }

    // Inclusion victims scale with (eviction rate x resident-line
    // share), so they only become visible when the L3 is small
    // relative to the churner's insert rate; demonstrate with a
    // 2MB L3.
    sim::MachineConfig small_l3 = base;
    small_l3.l3 = sim::CacheConfig{"L3", 2 * 1024 * 1024, 16, 30};
    sim::MachineConfig small_l3_incl = small_l3;
    small_l3_incl.inclusiveL3 = true;

    const auto &mcf = workload::spec2006::byName("429.mcf");
    std::printf("\ninclusion victims (2MB L3, calculix vs mcf "
                "churn):\n");
    std::printf("  non-inclusive L3: calculix degradation %.1f%%\n",
                100 * pairDeg(sim::Machine(small_l3), calculix, mcf));
    std::printf("  inclusive L3:     calculix degradation %.1f%%\n",
                100 * pairDeg(sim::Machine(small_l3_incl), calculix,
                              mcf));

    std::printf(
        "\nreading: prefetching raises streaming solo IPC (less\n"
        "latency-bound) and typically deepens bandwidth contention "
        "in\nstreaming pairs. Inclusion victims are a second-order\n"
        "effect at these geometries: a churner evicting E lines/cycle"
        "\nfrom an L-line L3 invalidates a victim's private copy "
        "only\nwith probability (resident lines)/L per eviction, "
        "which for\nKB-scale hot sets amounts to well under 1%% extra "
        "misses\n(the mechanism itself is exercised by "
        "tests/test_machine_options.cpp).\n");

    bench::paperReference(
        "design-choice ablation beyond the paper: the paper's real "
        "machines had both features enabled in hardware");
    return 0;
}
