/**
 * @file
 * Figure 4: sensitivity and contentiousness of the workloads on the
 * memory-subsystem resources (L1, L2, L3 cache Rulers).
 */

#include "bench/common.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_fig04_mem_sensitivity");
    bench::banner("Figure 4",
                  "Memory-subsystem sensitivity (S) and contentiousness "
                  "(C) per application, SMT co-location with Rulers");

    core::Lab lab = bench::makeLab(sim::MachineConfig::ivyBridge());
    const auto mode = core::CoLocationMode::kSmt;

    std::vector<workload::WorkloadProfile> apps =
        workload::spec2006::all();
    for (const auto &p : workload::cloudsuite::all())
        apps.push_back(p);

    const rulers::Dimension mem_dims[] = {rulers::Dimension::kL1,
                                          rulers::Dimension::kL2,
                                          rulers::Dimension::kL3};

    std::printf("%-18s %-10s", "application", "suite");
    for (auto dim : mem_dims)
        std::printf("   S:%-4s", rulers::dimensionName(dim).data());
    for (auto dim : mem_dims)
        std::printf("   C:%-4s", rulers::dimensionName(dim).data());
    std::printf("\n");

    double spec_l3_con = 0.0, cloud_l3_con = 0.0;
    int spec_n = 0, cloud_n = 0;
    for (const auto &app : apps) {
        const auto &c = lab.characterization(app, mode);
        std::printf("%-18s %-10s", app.name.c_str(),
                    workload::suiteName(app.suite));
        for (auto dim : mem_dims) {
            std::printf("  %6.1f%%",
                        100 * c.sensitivity[rulers::dimensionIndex(dim)]);
        }
        for (auto dim : mem_dims) {
            std::printf("  %6.1f%%",
                        100 * c.contentiousness
                                  [rulers::dimensionIndex(dim)]);
        }
        std::printf("\n");

        const double l3_con =
            c.contentiousness[rulers::dimensionIndex(
                rulers::Dimension::kL3)];
        if (app.suite == workload::Suite::kCloudSuite) {
            cloud_l3_con += l3_con;
            ++cloud_n;
        } else {
            spec_l3_con += l3_con;
            ++spec_n;
        }
    }

    const auto &calculix = lab.characterization(
        workload::spec2006::byName("454.calculix"), mode);
    std::printf("\n454.calculix sensitivity L1 %.1f%% vs L2 %.1f%% "
                "(similar => L1-reliant, Finding 7)\n",
                100 * calculix.sensitivity[4],
                100 * calculix.sensitivity[5]);
    std::printf("mean L3 contentiousness: CloudSuite %.1f%% vs "
                "SPEC %.1f%% (Finding 8: CloudSuite higher)\n",
                100 * cloud_l3_con / cloud_n,
                100 * spec_l3_con / spec_n);

    bench::paperReference(
        "memory contention behaviours are more monolithic than FUs; "
        "454.calculix has similar L1/L2 sensitivity; CloudSuite is "
        "much more contentious at the L3 than SPEC (Findings 7-8)");
    return 0;
}
