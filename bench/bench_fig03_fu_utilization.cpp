/**
 * @file
 * Figure 3: cumulative distribution of the aggregated utilization of
 * functional-unit ports 0, 1 and 5 across all SPEC CPU2006 SMT
 * co-location pairs.
 */

#include <map>

#include "bench/common.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_fig03_fu_utilization");
    bench::banner("Figure 3",
                  "Aggregated FU port utilization CDFs over all SPEC "
                  "SMT co-location pairs");

    core::Lab lab = bench::makeLab(sim::MachineConfig::ivyBridge());
    const auto &apps = workload::spec2006::all();

    std::map<int, std::vector<double>> samples;  // port -> values
    std::map<int, std::map<const char *, std::vector<double>>> by_suite;
    for (size_t i = 0; i < apps.size(); ++i) {
        for (size_t j = i + 1; j < apps.size(); ++j) {
            const auto u = lab.pairPortUtilization(
                apps[i], apps[j], core::CoLocationMode::kSmt);
            const bool both_fp =
                apps[i].suite == workload::Suite::kSpecFp &&
                apps[j].suite == workload::Suite::kSpecFp;
            const bool both_int =
                apps[i].suite == workload::Suite::kSpecInt &&
                apps[j].suite == workload::Suite::kSpecInt;
            for (int port : {0, 1, 5}) {
                samples[port].push_back(u[port]);
                if (both_fp)
                    by_suite[port]["SPEC_FP"].push_back(u[port]);
                if (both_int)
                    by_suite[port]["SPEC_INT"].push_back(u[port]);
            }
        }
    }

    for (int port : {0, 1, 5}) {
        std::printf("\nport %d aggregated utilization CDF "
                    "(%zu pairs):\n", port, samples[port].size());
        std::printf("  %8s %8s\n", "util", "F(util)");
        for (const auto &[x, p] :
             stats::empiricalCdf(samples[port], 11)) {
            std::printf("  %7.1f%% %8.2f\n", 100 * x, p);
        }
        std::printf("  median %.1f%%  | FP-FP pairs mean %.1f%%, "
                    "INT-INT pairs mean %.1f%%\n",
                    100 * stats::quantile(samples[port], 0.5),
                    100 * stats::mean(by_suite[port]["SPEC_FP"]),
                    100 * stats::mean(by_suite[port]["SPEC_INT"]));
    }

    bench::paperReference(
        "SPEC_FP pairs utilize ports 0 and 1 more than SPEC_INT; "
        "port 5 is the opposite due to branches (Finding 6: ports 0 "
        "and 1 have similar distributions, distinctly different from "
        "port 5)");
    return 0;
}
