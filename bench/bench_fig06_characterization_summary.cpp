/**
 * @file
 * Figure 6: the full sensitivity/contentiousness characterization of
 * all SPEC CPU2006 and CloudSuite applications across the seven
 * sharing dimensions — the paper's summary of contention variance.
 */

#include "bench/common.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_fig06_characterization_summary");
    bench::banner("Figure 6",
                  "Sensitivity (S) and contentiousness (C) of every "
                  "application in all 7 sharing dimensions");

    core::Lab lab = bench::makeLab(sim::MachineConfig::ivyBridge());
    const auto mode = core::CoLocationMode::kSmt;

    std::vector<workload::WorkloadProfile> apps =
        workload::spec2006::all();
    for (const auto &p : workload::cloudsuite::all())
        apps.push_back(p);

    std::printf("%-18s |", "application");
    for (int d = 0; d < rulers::kNumDimensions; ++d)
        std::printf(" S%d", d);
    std::printf(" |");
    for (int d = 0; d < rulers::kNumDimensions; ++d)
        std::printf(" C%d", d);
    std::printf("   (values in %%)\n");
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        std::printf("  dim %d = %s\n", d,
                    rulers::dimensionName(
                        rulers::kAllDimensions[d]).data());
    }

    std::array<double, rulers::kNumDimensions> s_min{}, s_max{};
    s_min.fill(1.0);
    for (const auto &app : apps) {
        const auto &c = lab.characterization(app, mode);
        std::printf("%-18s |", app.name.c_str());
        for (int d = 0; d < rulers::kNumDimensions; ++d) {
            std::printf(" %2.0f", 100 * c.sensitivity[d]);
            s_min[d] = std::min(s_min[d], c.sensitivity[d]);
            s_max[d] = std::max(s_max[d], c.sensitivity[d]);
        }
        std::printf(" |");
        for (int d = 0; d < rulers::kNumDimensions; ++d)
            std::printf(" %2.0f", 100 * c.contentiousness[d]);
        std::printf("\n");
    }

    std::printf("\nper-dimension sensitivity spread across apps:\n");
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        std::printf("  %-14s %5.1f%% .. %5.1f%%\n",
                    rulers::dimensionName(
                        rulers::kAllDimensions[d]).data(),
                    100 * s_min[d], 100 * s_max[d]);
    }

    bench::paperReference(
        "contention characteristics have a large variance both for "
        "the same resource across applications (e.g. port sensitivity "
        "from negligible to above 70%) and across resources");
    return 0;
}
