/**
 * @file
 * Section III-B1 / III-D: the profiling-overhead study.
 *
 * The paper's low-overhead claim rests on Ruler linearity: instead
 * of sweeping every intensity, the sensitivity curve is interpolated
 * from two or three samples. This harness measures dense memory
 * sensitivity curves, rebuilds them from 2- and 3-point sparse
 * samples, and reports the interpolation error and the profiling
 * speed-up.
 */

#include "bench/common.h"
#include "core/sensitivity_curve.h"

using namespace smite;

int
main()
{
    bench::ReportScope obs_scope("bench_profiling_overhead");
    bench::banner("Profiling overhead (Section III-B1 / III-D)",
                  "Dense sensitivity sweeps vs 2/3-point "
                  "interpolation");

    const sim::Machine machine(sim::MachineConfig::ivyBridge());
    const core::CurveProfiler profiler(machine);
    const auto &config = machine.config();

    const std::vector<std::string> victims = {
        "454.calculix", "401.bzip2", "447.dealII", "482.sphinx3"};

    struct Level {
        rulers::Dimension dim;
        std::vector<std::uint64_t> denseSweep;
    };
    const std::vector<Level> levels = {
        {rulers::Dimension::kL1,
         {4096, 8192, 12288, 16384, 20480, 24576, 28672, 32768}},
        {rulers::Dimension::kL2,
         {32768, 65536, 98304, 131072, 163840, 196608, 229376,
          262144}},
        {rulers::Dimension::kL3,
         {config.l3.sizeBytes / 4, config.l3.sizeBytes / 2,
          3 * config.l3.sizeBytes / 4, config.l3.sizeBytes,
          5 * config.l3.sizeBytes / 4, 3 * config.l3.sizeBytes / 2,
          7 * config.l3.sizeBytes / 4, 2 * config.l3.sizeBytes}},
    };

    double worst2 = 0, worst3 = 0;
    for (const Level &level : levels) {
        std::printf("\n%s ruler (dense sweep: %zu points):\n",
                    rulers::dimensionName(level.dim).data(),
                    level.denseSweep.size());
        std::printf("  %-14s %16s %16s\n", "victim",
                    "2-point MAE", "3-point MAE");
        for (const auto &name : victims) {
            const auto &app = workload::spec2006::byName(name);
            const core::SensitivityCurve dense =
                profiler.memoryCurve(app, level.dim,
                                     level.denseSweep);
            const double err2 =
                dense.meanAbsoluteError(dense.sparsified(2));
            const double err3 =
                dense.meanAbsoluteError(dense.sparsified(3));
            worst2 = std::max(worst2, err2);
            worst3 = std::max(worst3, err3);
            std::printf("  %-14s %15.2f%% %15.2f%%\n", name.c_str(),
                        100 * err2, 100 * err3);
        }
    }

    std::printf("\nworst-case interpolation error: 2-point %.2f%%, "
                "3-point %.2f%%\n", 100 * worst2, 100 * worst3);
    std::printf("profiling cost: dense sweep = 8 co-location runs "
                "per (app, level);\n"
                "interpolation needs 2-3 — a %0.1fx-%.1fx reduction, "
                "keeping per-application\ncharacterization in the "
                "order of seconds (Section III-D).\n",
                8.0 / 3.0, 8.0 / 2.0);

    bench::paperReference(
        "the linear intensity-interference relationship lets the "
        "entire sensitivity curve be approximated by interpolating "
        "between Rulers sized to the L1, L2 and L3 caches");
    return 0;
}
