/**
 * @file
 * Figure 18: 3-year total cost of ownership improvement from
 * SMiTe-steered co-location, normalized to the baseline that
 * disallows SMT co-location.
 *
 * Baseline fleet: half the machines run latency-sensitive services
 * half-loaded (6/12 contexts), half run batch work (6 jobs each,
 * also without SMT co-location). SMiTe absorbs batch instances onto
 * the latency machines' idle contexts, retiring batch servers.
 */

#include "bench/scaleout.h"
#include "tco/tco.h"

using namespace smite;

namespace {

/** TCO saving from absorbing a mean of @p mean_instances per server. */
double
tcoSaving(const tco::TcoModel &model, double mean_instances)
{
    const double n = 4000.0;  // latency servers (half the fleet)
    const double batch_jobs_per_server = bench::kLatencyThreads;

    // Baseline: n latency servers at 6/12 plus n batch servers fully
    // committed (6 jobs on 6 cores).
    const double baseline = model.horizonCost(n, 0.5) +
                            model.horizonCost(n, 1.0);

    // With SMiTe: each latency server absorbs mean_instances batch
    // jobs onto idle contexts; the equivalent batch servers retire.
    const double retired =
        n * mean_instances / batch_jobs_per_server;
    const double latency_util =
        (bench::kLatencyThreads + mean_instances) / 12.0;
    const double with_smite =
        model.horizonCost(n, latency_util) +
        model.horizonCost(n - retired, 1.0);

    return 1.0 - with_smite / baseline;
}

} // namespace

int
main()
{
    bench::ReportScope obs_scope("bench_fig18_tco");
    bench::banner("Figure 18",
                  "3-year TCO improvement vs disallowing SMT "
                  "co-location");

    core::Lab lab = bench::makeLab(sim::MachineConfig::sandyBridgeEN());
    const auto mode = core::CoLocationMode::kSmt;
    const core::SmiteModel model =
        lab.trainSmite(workload::spec2006::oddNumbered(), mode);
    const auto batch = workload::spec2006::evenNumbered();

    const tco::TcoModel tco_model;  // Google-fleet PUE 1.12 default
    std::printf("TCO parameters: server $%.0f/%0.fy, DC $%.0f/W/%.0fy,"
                " PUE %.2f, $%.3f/kWh, horizon %.0fy\n",
                tco_model.params().serverCapex,
                tco_model.params().serverAmortYears,
                tco_model.params().datacenterCapexPerWatt,
                tco_model.params().datacenterAmortYears,
                tco_model.params().pue,
                tco_model.params().electricityPerKwh,
                tco_model.params().horizonYears);

    // Average-performance QoS (all four CloudSuite applications).
    {
        const auto pairings = bench::buildAvgPerfPairings(
            lab, model, workload::cloudsuite::all(), batch);
        const scheduler::Cluster cluster(
            pairings, bench::namesOf(workload::cloudsuite::all()),
            bench::kServersPerApp);
        std::printf("\naverage-performance QoS:\n");
        std::printf("%-10s %12s %12s\n", "QoS target", "mean inst",
                    "TCO saving");
        for (double target : {0.95, 0.90, 0.85}) {
            const auto result = cluster.runPredictedPolicy(target);
            std::printf("%9.0f%% %12.2f %11.2f%%\n", 100 * target,
                        result.meanInstances(),
                        100 * tcoSaving(tco_model,
                                        result.meanInstances()));
        }
        std::printf("paper: up to 21.05%% saving\n");
    }

    // Tail-latency QoS (Web-Search + Data-Caching).
    {
        std::vector<workload::WorkloadProfile> latency = {
            workload::cloudsuite::byName("Web-Search"),
            workload::cloudsuite::byName("Data-Caching")};
        const auto pairings =
            bench::buildTailPairings(lab, model, latency, batch);
        const scheduler::Cluster cluster(pairings,
                                         bench::namesOf(latency),
                                         2 * bench::kServersPerApp);
        std::printf("\n90th-percentile latency QoS:\n");
        std::printf("%-10s %12s %12s\n", "QoS target", "mean inst",
                    "TCO saving");
        for (double target : {0.95, 0.90, 0.85}) {
            const auto result = cluster.runPredictedPolicy(target);
            std::printf("%9.0f%% %12.2f %11.2f%%\n", 100 * target,
                        result.meanInstances(),
                        100 * tcoSaving(tco_model,
                                        result.meanInstances()));
        }
        std::printf("paper: up to 10.70%% saving\n");
    }

    bench::paperReference(
        "SMiTe saves up to 21.05% TCO under average-performance QoS "
        "and up to 10.70% under 90th-percentile latency QoS");
    return 0;
}
