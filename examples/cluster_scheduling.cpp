/**
 * @file
 * Cluster scheduling example: use SMiTe predictions to steer a
 * cluster scheduler toward 'safe' SMT co-locations.
 *
 * A small cluster runs Web-Search half-loaded; the scheduler decides
 * how many 470.lbm batch instances each server can absorb while
 * keeping average performance above a QoS target, then the example
 * reports what actually happened to QoS and utilization.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/cluster_scheduling [qos-target]
 */

#include <cstdio>
#include <cstdlib>

#include "core/smite.h"
#include "scheduler/cluster.h"

using namespace smite;

int
main(int argc, char **argv)
{
    const double target = argc > 1 ? std::atof(argv[1]) : 0.90;
    if (target <= 0.0 || target >= 1.0) {
        std::fprintf(stderr, "usage: %s [qos-target in (0,1)]\n",
                     argv[0]);
        return 1;
    }

    // Measure on the 6-core server platform.
    core::Lab lab(sim::MachineConfig::sandyBridgeEN());
    lab.enableDiskCache("smite_lab_cache_Sandy_Bridge_EN.txt");
    const auto mode = core::CoLocationMode::kSmt;
    const int threads = 6;

    const auto &web_search =
        workload::cloudsuite::byName("Web-Search");
    const auto &lbm = workload::spec2006::byName("470.lbm");

    // Train on a handful of SPEC benchmarks (a full deployment would
    // use the whole training suite; see bench_fig14).
    std::printf("training the prediction model...\n");
    using workload::spec2006::byName;
    const core::SmiteModel model = lab.trainSmite(
        {byName("401.bzip2"), byName("429.mcf"), byName("433.milc"),
         byName("437.leslie3d"), byName("445.gobmk"),
         byName("453.povray"), byName("465.tonto"),
         byName("471.omnetpp"), byName("481.wrf")},
        mode);

    // Build the (Web-Search, lbm, k) QoS table.
    std::printf("measuring and predicting co-location QoS...\n\n");
    const double pair_prediction =
        model.predict(lab.characterization(web_search, mode, threads),
                      lab.characterization(lbm, mode));
    scheduler::Pairing pairing;
    pairing.latencyApp = web_search.name;
    pairing.batchApp = lbm.name;
    std::printf("%-10s %14s %14s\n", "instances", "predicted QoS",
                "actual QoS");
    for (int k = 1; k <= threads; ++k) {
        scheduler::CoLocationOption option;
        option.predictedQos =
            1.0 - core::Lab::scaleToInstances(pair_prediction, k,
                                              threads);
        option.actualQos =
            1.0 - lab.multiInstanceDegradation(web_search, threads,
                                               lbm, k, mode);
        pairing.byInstances.push_back(option);
        std::printf("%10d %13.1f%% %13.1f%%\n", k,
                    100 * option.predictedQos,
                    100 * option.actualQos);
    }

    const scheduler::Cluster cluster({pairing}, {web_search.name},
                                     /*serversPerApp=*/200);
    const auto smite = cluster.runPredictedPolicy(target);
    const auto oracle = cluster.runOraclePolicy(target);

    std::printf("\nQoS target %.0f%% on %d servers:\n", 100 * target,
                cluster.servers());
    std::printf("  SMiTe : %.2f batch instances/server, utilization "
                "%.1f%% (+%.1f%%), violations %.2f%%\n",
                smite.meanInstances(), 100 * smite.utilization(),
                100 * smite.utilizationImprovement(),
                100 * smite.violationRate());
    std::printf("  Oracle: %.2f batch instances/server, utilization "
                "%.1f%% (+%.1f%%), violations %.2f%%\n",
                oracle.meanInstances(), 100 * oracle.utilization(),
                100 * oracle.utilizationImprovement(),
                100 * oracle.violationRate());
    return 0;
}
