/**
 * @file
 * Real-hardware stressors: runs the paper's Figure 9 kernels on the
 * host CPU. On a machine with SMT siblings it additionally measures
 * real sensitivity/contentiousness between two stressors pinned to
 * the two hardware contexts of one physical core.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/hw_stressors
 */

#include <atomic>
#include <cstdio>
#include <thread>

#include "hwrulers/fu_stressors.h"
#include "hwrulers/mem_stressors.h"
#include "hwrulers/topology.h"

using namespace smite::hwrulers;

namespace {

constexpr double kSoloSeconds = 0.25;
constexpr double kPairSeconds = 0.5;

/** Run kind B against kind A on SMT siblings; return A's slowdown. */
double
smtDegradation(FuKind victim, FuKind aggressor, int cpu_a, int cpu_b,
               double solo_ops_per_s)
{
    std::atomic<bool> stop{false};
    StressorResult victim_result;

    std::thread victim_thread([&] {
        pinToCpu(cpu_a);
        victim_result = runFuStressor(victim, kPairSeconds, &stop);
    });
    std::thread aggressor_thread([&] {
        pinToCpu(cpu_b);
        runFuStressor(aggressor, kPairSeconds + 0.2, &stop);
    });
    victim_thread.join();
    stop.store(true);
    aggressor_thread.join();

    return 1.0 - victim_result.opsPerSecond / solo_ops_per_s;
}

} // namespace

int
main()
{
    std::printf("Figure 9 stressor kernels on this host\n");
    std::printf("--------------------------------------\n\n");

    // Functional-unit stressors (Figure 9 a-d).
    double solo[4] = {};
    const FuKind kinds[] = {FuKind::kFpMul, FuKind::kFpAdd,
                            FuKind::kFpShf, FuKind::kIntAdd};
    for (int i = 0; i < 4; ++i) {
        const auto result = runFuStressor(kinds[i], kSoloSeconds);
        solo[i] = result.opsPerSecond;
        std::printf("%-18s %8.2f Gops/s solo\n",
                    fuKindName(kinds[i]).data(),
                    result.opsPerSecond / 1e9);
    }

    // Memory stressors (Figure 9 e-f) across working-set sizes.
    std::printf("\n%-22s %14s\n", "memory stressor", "updates/s");
    for (std::size_t kb : {16, 32, 256, 2048, 16384}) {
        const auto result =
            runMemRandomStressor(kb * 1024, kSoloSeconds);
        std::printf("LFSR random %6zuKB   %11.1f M/s\n", kb,
                    result.opsPerSecond / 1e6);
    }
    for (std::size_t kb : {256, 2048, 16384}) {
        const auto result =
            runMemStrideStressor(kb * 1024, kSoloSeconds);
        std::printf("stride-64  %6zuKB   %11.1f M/s\n", kb,
                    result.opsPerSecond / 1e6);
    }

    // SMT co-location on real siblings, if the host has them.
    const CpuTopology topo = CpuTopology::detect();
    std::printf("\nhost topology: %d logical CPUs, %zu SMT sibling "
                "pair(s)\n", topo.numLogicalCpus(),
                topo.smtSiblingPairs().size());
    if (!topo.hasSmt()) {
        std::printf("no SMT siblings available: skipping the real "
                    "co-location measurement\n(run on an SMT machine "
                    "to see port-level interference live).\n");
        return 0;
    }

    const auto [cpu_a, cpu_b] = topo.smtSiblingPairs().front();
    std::printf("co-locating stressors on SMT siblings cpu%d/cpu%d:\n",
                cpu_a, cpu_b);
    std::printf("%-18s vs %-18s degradation\n", "victim", "aggressor");
    for (int v = 0; v < 4; ++v) {
        for (int a = 0; a < 4; ++a) {
            const double degradation = smtDegradation(
                kinds[v], kinds[a], cpu_a, cpu_b, solo[v]);
            std::printf("%-18s vs %-18s %8.1f%%\n",
                        fuKindName(kinds[v]).data(),
                        fuKindName(kinds[a]).data(),
                        100 * degradation);
        }
    }
    std::printf("\nsame-port pairs (e.g. FP_MUL vs FP_MUL) should "
                "degrade most; disjoint ports least.\n");
    return 0;
}
