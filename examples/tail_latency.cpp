/**
 * @file
 * Tail-latency example: how a throughput degradation becomes a tail
 * latency blow-up (Equations 4-6), and why tail QoS targets admit
 * fewer co-locations than average-performance targets.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/tail_latency
 */

#include <cstdio>

#include "core/smite.h"

using namespace smite;

int
main()
{
    const auto &ws = workload::cloudsuite::byName("Web-Search");
    const core::TailLatencyPredictor predictor(ws);

    std::printf("Web-Search worker thread as an M/M/1 queue:\n");
    std::printf("  arrival rate lambda = %.0f req/s\n",
                ws.arrivalRate);
    std::printf("  service rate mu     = %.0f req/s\n",
                ws.serviceRate);
    std::printf("  offered load rho    = %.2f\n",
                ws.arrivalRate / ws.serviceRate);
    std::printf("  solo p90 latency    = %.3f ms (closed form)\n\n",
                1e3 * predictor.soloPercentile(0.90));

    // Validate the closed form against a discrete-event simulation.
    const double simulated = predictor.measurePercentile(0.90, 0.0);
    std::printf("  discrete-event check: simulated solo p90 = "
                "%.3f ms\n\n", 1e3 * simulated);

    std::printf("%-14s %12s %16s %16s\n", "degradation",
                "avg QoS", "p90 (Eq. 6)", "p90 stretch");
    const double solo = predictor.soloPercentile(0.90);
    for (double deg :
         {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35}) {
        const double p90 = predictor.predictPercentile(0.90, deg);
        std::printf("%12.0f%% %11.0f%% %13.3f ms %15.2fx\n",
                    100 * deg, 100 * (1 - deg), 1e3 * p90,
                    p90 / solo);
    }

    std::printf("\nNote the super-linear growth: a 30%% throughput "
                "degradation already\nstretches the p90 by more than "
                "3x, which is why the paper's tail-QoS\ntargets admit "
                "far fewer co-locations (Figure 16 vs Figure 14).\n");
    return 0;
}
