/**
 * @file
 * Quickstart: the whole SMiTe workflow in one page.
 *
 *  1. Build a machine model (Table I Ivy Bridge).
 *  2. Characterize two applications with the Ruler suite.
 *  3. Train the Equation 3 regression on a training set.
 *  4. Predict the SMT co-location degradation of a held-out pair
 *     and compare against the measured truth.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/smite.h"

using namespace smite;

int
main()
{
    // 1. A machine to measure on.
    core::Lab lab(sim::MachineConfig::ivyBridge());
    // Share measurements with the bench harnesses (first run
    // simulates, reruns are instant).
    lab.enableDiskCache("smite_lab_cache_Ivy_Bridge.txt");
    std::printf("machine: %s (%d cores x %d contexts)\n\n",
                lab.machine().config().name.c_str(),
                lab.machine().config().numCores,
                lab.machine().config().contextsPerCore);

    // 2. Characterize two applications: sensitivity (how much each
    //    suffers) and contentiousness (how much each inflicts) per
    //    sharing dimension, measured by co-running with Rulers.
    const auto mode = core::CoLocationMode::kSmt;
    const auto &victim = workload::spec2006::byName("465.tonto");
    const auto &aggressor = workload::spec2006::byName("433.milc");

    for (const auto *app : {&victim, &aggressor}) {
        const core::Characterization &c =
            lab.characterization(*app, mode);
        std::printf("%-14s", app->name.c_str());
        for (int d = 0; d < rulers::kNumDimensions; ++d) {
            std::printf(" %s S%.0f%%/C%.0f%%",
                        rulers::dimensionName(
                            rulers::kAllDimensions[d]).data(),
                        100 * c.sensitivity[d],
                        100 * c.contentiousness[d]);
        }
        std::printf("\n");
    }

    // 3. Train the prediction model on the even-numbered SPEC
    //    benchmarks (the paper's training split).
    std::printf("\ntraining Equation 3 on the even-numbered SPEC "
                "benchmarks...\n");
    const core::SmiteModel model =
        lab.trainSmite(workload::spec2006::evenNumbered(), mode);

    // 4. Predict a held-out co-location and compare with the truth.
    const double predicted =
        model.predict(lab.characterization(victim, mode),
                      lab.characterization(aggressor, mode));
    const double measured =
        lab.pairDegradation(victim, aggressor, mode);
    std::printf("\n%s co-located with %s (SMT):\n",
                victim.name.c_str(), aggressor.name.c_str());
    std::printf("  predicted degradation %.1f%%\n", 100 * predicted);
    std::printf("  measured degradation  %.1f%%\n", 100 * measured);
    std::printf("  absolute error        %.1f%%\n",
                100 * std::abs(predicted - measured));
    return 0;
}
