/**
 * @file
 * Custom-workload example: describe your own application as a
 * WorkloadProfile, characterize it with the Rulers, and predict how
 * it will co-exist with the bundled workloads — the workflow a WSC
 * operator would use for a new service arriving at the scheduler
 * (paper Section III-D).
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/custom_workload
 */

#include <cstdio>

#include "core/smite.h"

using namespace smite;

int
main()
{
    // Describe the new application: a vectorized analytics kernel —
    // FP-multiply heavy, streaming over a large column store, decent
    // branch behaviour.
    workload::WorkloadProfile analytics;
    analytics.name = "column-scan";
    analytics.suite = workload::Suite::kMicro;
    analytics.mixOf(sim::UopType::kFpMul) = 0.24;
    analytics.mixOf(sim::UopType::kFpAdd) = 0.18;
    analytics.mixOf(sim::UopType::kIntAdd) = 0.14;
    analytics.mixOf(sim::UopType::kBranch) = 0.06;
    analytics.mixOf(sim::UopType::kLoad) = 0.28;
    analytics.mixOf(sim::UopType::kStore) = 0.06;
    analytics.branchMispredictRate = 0.01;
    analytics.dataFootprint = 512ull << 20;  // 512 MiB column store
    analytics.streamFraction = 0.70;         // sequential scans
    analytics.hotBytes = 2 << 20;            // dictionary / metadata
    analytics.hotProb = 0.5;
    analytics.stackBytes = 8 * 1024;
    analytics.stackProb = 0.30;
    analytics.codeFootprint = 128 * 1024;
    analytics.loopBytes = 1024;
    analytics.codeDwellUops = 20000;
    analytics.depProb = 0.5;
    analytics.loadDepProb = 0.05;
    analytics.depMeanDist = 5.0;

    core::Lab lab(sim::MachineConfig::ivyBridge());
    lab.enableDiskCache("smite_lab_cache_Ivy_Bridge.txt");
    const auto mode = core::CoLocationMode::kSmt;

    std::printf("characterizing %s with the Ruler suite...\n\n",
                analytics.name.c_str());
    const auto &c = lab.characterization(analytics, mode);
    std::printf("%-14s %12s %16s\n", "dimension", "sensitivity",
                "contentiousness");
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        std::printf("%-14s %11.1f%% %15.1f%%\n",
                    rulers::dimensionName(
                        rulers::kAllDimensions[d]).data(),
                    100 * c.sensitivity[d],
                    100 * c.contentiousness[d]);
    }

    // One characterization is enough to predict against anything the
    // model knows about — no cross-product profiling (Section III-D).
    std::printf("\ntraining the model once on the SPEC training "
                "split...\n");
    const core::SmiteModel model =
        lab.trainSmite(workload::spec2006::evenNumbered(), mode);

    std::printf("\npredicted SMT co-location outcomes:\n");
    std::printf("%-16s %18s %18s\n", "co-runner",
                "column-scan loses", "co-runner loses");
    for (const char *name : {"429.mcf", "444.namd", "453.povray",
                             "462.libquantum", "471.omnetpp"}) {
        const auto &other = workload::spec2006::byName(name);
        const double we_lose =
            model.predict(c, lab.characterization(other, mode));
        const double they_lose =
            model.predict(lab.characterization(other, mode), c);
        std::printf("%-16s %17.1f%% %17.1f%%\n", name, 100 * we_lose,
                    100 * they_lose);
    }

    std::printf("\nA scheduler would place column-scan with the "
                "co-runner whose mutual\npredicted degradation stays "
                "within its QoS budget.\n");
    return 0;
}
