/**
 * @file
 * Compare two bench run reports and flag regressions.
 *
 *   report_diff [--tol T] [--metrics] <a>.report.json <b>.report.json
 *
 * Exits 0 when the reports are equivalent (same name, same results
 * within tolerance, same partial/complete status), 1 with one line
 * per divergence on stdout when they differ, and 2 on usage or parse
 * errors. `--tol` sets the relative tolerance for numeric results
 * (default 1e-9 — simulated measurements are deterministic, so any
 * real drift is a regression); `--metrics` also compares the metrics
 * snapshot (noisy: cache hit counts change whenever the disk cache is
 * warm, so it is off by default). Timings are never compared.
 *
 * Typical CI use: run a harness before and after a change and diff
 * the two reports — a silent numeric drift fails the pipeline with
 * the exact path that moved.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/diff.h"
#include "obs/json.h"

namespace {

using smite::obs::json::Value;

int
usage()
{
    std::fprintf(stderr,
                 "usage: report_diff [--tol T] [--metrics] "
                 "<a>.report.json <b>.report.json\n");
    return 2;
}

bool
loadJson(const char *path, Value *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "report_diff: cannot open %s\n", path);
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!Value::parse(buffer.str(), out, &error)) {
        std::fprintf(stderr, "report_diff: %s: %s\n", path,
                     error.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    smite::obs::ReportDiffOptions opts;
    std::vector<const char *> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tol") {
            if (i + 1 >= argc)
                return usage();
            char *end = nullptr;
            opts.tolerance = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || opts.tolerance < 0.0)
                return usage();
        } else if (arg == "--metrics") {
            opts.include_metrics = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.size() != 2)
        return usage();

    Value a, b;
    if (!loadJson(files[0], &a) || !loadJson(files[1], &b))
        return 2;

    const std::vector<smite::obs::ReportDiffEntry> diffs =
        smite::obs::diffReports(a, b, opts);
    if (diffs.empty()) {
        std::printf("reports match (tolerance %g)\n", opts.tolerance);
        return 0;
    }
    for (const auto &d : diffs)
        std::printf("%s: %s\n", d.path.c_str(), d.detail.c_str());
    std::printf("%zu difference%s\n", diffs.size(),
                diffs.size() == 1 ? "" : "s");
    return 1;
}
