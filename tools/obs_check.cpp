/**
 * @file
 * Validator for the observability artifacts the bench harnesses emit.
 *
 * Two subcommands, both exiting 0 on a structurally valid document and
 * 1 (with a diagnostic on stderr) otherwise:
 *
 *   obs_check trace <file>.trace.json
 *       Chrome trace_event document: requires a traceEvents array of
 *       complete ("ph":"X") events, each with a name, pid/tid and
 *       numeric ts/dur. Prints the distinct span names, one per line.
 *
 *   obs_check report <file>.report.json [--nonzero name...]
 *       Run report: requires the smite-run-report/1 schema stamp, the
 *       run name, and the config/timings/results/metrics sections with
 *       well-formed histogram summaries. Prints every metric name, one
 *       per line. Each name after --nonzero must additionally exist in
 *       the snapshot with a nonzero value (histograms: count > 0) —
 *       the chaos smoke test uses this to prove faults actually fired.
 *
 * The printed names feed the tier-1 smoke test, which greps each one
 * against the catalog in docs/OBSERVABILITY.md.
 */

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/report.h"

namespace {

using smite::obs::json::Value;

bool
fail(const std::string &message)
{
    std::fprintf(stderr, "obs_check: %s\n", message.c_str());
    return false;
}

bool
loadJson(const char *path, Value *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail(std::string("cannot open ") + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!Value::parse(buffer.str(), out, &error))
        return fail(std::string(path) + ": " + error);
    return true;
}

bool
checkTrace(const char *path)
{
    Value doc;
    if (!loadJson(path, &doc))
        return false;
    if (!doc.isObject())
        return fail("trace document is not an object");
    const Value *events = doc.find("traceEvents");
    if (events == nullptr || !events->isArray())
        return fail("missing traceEvents array");
    if (events->items().empty())
        return fail("traceEvents is empty");

    std::set<std::string> names;
    for (std::size_t i = 0; i < events->items().size(); ++i) {
        const Value &e = events->items()[i];
        const std::string at = "traceEvents[" + std::to_string(i) + "]";
        if (!e.isObject())
            return fail(at + " is not an object");
        const Value *name = e.find("name");
        if (name == nullptr || !name->isString() ||
            name->asString().empty()) {
            return fail(at + " has no name");
        }
        const Value *ph = e.find("ph");
        if (ph == nullptr || !ph->isString() || ph->asString() != "X")
            return fail(at + " is not a complete (ph=X) event");
        for (const char *key : {"pid", "tid", "ts", "dur"}) {
            const Value *v = e.find(key);
            if (v == nullptr || !v->isNumber())
                return fail(at + " lacks numeric " + key);
        }
        names.insert(name->asString());
    }
    for (const std::string &name : names)
        std::printf("%s\n", name.c_str());
    return true;
}

/** Requires @p doc.@p key to be an object; returns it or nullptr. */
const Value *
requireObject(const Value &doc, const char *key, bool *ok)
{
    const Value *section = doc.find(key);
    if (section == nullptr || !section->isObject()) {
        fail(std::string("missing object section: ") + key);
        *ok = false;
        return nullptr;
    }
    return section;
}

/**
 * Value of metric @p name in the snapshot, searching all three kinds;
 * histograms report their sample count. Absent metrics are 0.
 */
double
metricValue(const Value &metrics, const std::string &name)
{
    for (const char *kind : {"counters", "gauges"}) {
        if (const Value *section = metrics.find(kind)) {
            if (const Value *v = section->find(name))
                return v->asNumber();
        }
    }
    if (const Value *section = metrics.find("histograms")) {
        if (const Value *v = section->find(name)) {
            if (const Value *count = v->find("count"))
                return count->asNumber();
        }
    }
    return 0.0;
}

bool
checkReport(const char *path, const std::vector<std::string> &nonzero)
{
    Value doc;
    if (!loadJson(path, &doc))
        return false;
    if (!doc.isObject())
        return fail("report document is not an object");

    const Value *schema = doc.find("schema");
    if (schema == nullptr || !schema->isString())
        return fail("missing schema stamp");
    if (schema->asString() != smite::obs::kRunReportSchema) {
        return fail("unexpected schema \"" + schema->asString() +
                    "\" (want " +
                    std::string(smite::obs::kRunReportSchema) + ")");
    }
    const Value *name = doc.find("name");
    if (name == nullptr || !name->isString() ||
        name->asString().empty()) {
        return fail("missing run name");
    }

    bool ok = true;
    requireObject(doc, "config", &ok);
    requireObject(doc, "timings", &ok);
    requireObject(doc, "results", &ok);
    const Value *metrics = requireObject(doc, "metrics", &ok);
    if (!ok)
        return false;

    std::set<std::string> metric_names;
    for (const char *kind : {"counters", "gauges", "histograms"}) {
        const Value *section = requireObject(*metrics, kind, &ok);
        if (section == nullptr)
            return false;
        for (const auto &[metric, value] : section->fields()) {
            if (metric.empty())
                return fail(std::string(kind) + " has an empty name");
            if (!metric_names.insert(metric).second) {
                return fail("metric registered under two kinds: " +
                            metric);
            }
            if (std::string(kind) == "histograms") {
                if (!value.isObject())
                    return fail(metric + " summary is not an object");
                for (const char *field :
                     {"count", "sum", "mean", "min", "max", "p50",
                      "p90", "p99"}) {
                    const Value *v = value.find(field);
                    if (v == nullptr || !v->isNumber()) {
                        return fail(metric + " summary lacks numeric " +
                                    field);
                    }
                }
            } else if (!value.isNumber()) {
                return fail(metric + " value is not a number");
            }
        }
    }
    for (const std::string &metric : metric_names)
        std::printf("%s\n", metric.c_str());

    for (const std::string &want : nonzero) {
        if (metric_names.find(want) == metric_names.end())
            return fail("required metric missing: " + want);
        if (metricValue(*metrics, want) == 0.0)
            return fail("required metric is zero: " + want);
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: obs_check trace <file.json> |\n"
                     "       obs_check report <file.json> "
                     "[--nonzero name...]\n");
        return 2;
    }
    const std::string mode = argv[1];
    if (mode == "trace") {
        if (argc != 3) {
            std::fprintf(stderr,
                         "usage: obs_check trace <file.json>\n");
            return 2;
        }
        return checkTrace(argv[2]) ? 0 : 1;
    }
    if (mode == "report") {
        std::vector<std::string> nonzero;
        if (argc > 3) {
            if (std::string(argv[3]) != "--nonzero") {
                std::fprintf(stderr,
                             "obs_check: unknown option %s\n", argv[3]);
                return 2;
            }
            for (int i = 4; i < argc; ++i)
                nonzero.emplace_back(argv[i]);
        }
        return checkReport(argv[2], nonzero) ? 0 : 1;
    }
    std::fprintf(stderr, "obs_check: unknown subcommand %s\n",
                 argv[1]);
    return 2;
}
