/**
 * @file
 * `smite` — command-line front end to the library.
 *
 *   smite machines
 *       List the machine-model presets.
 *   smite workloads
 *       List the bundled workload profiles.
 *   smite solo <app> [options]
 *       Solo IPC and PMU profile of one application.
 *   smite characterize <app> [options]
 *       Ruler characterization (sensitivity/contentiousness).
 *   smite predict <victim> <aggressor> [options]
 *       Train Equation 3 and predict a co-location, with the
 *       measured truth for comparison.
 *
 * Common options:
 *   --machine ivb|snb     machine preset (default ivb)
 *   --mode smt|cmp        co-location mode (default smt)
 *   --train even|odd      SPEC training split (default even)
 *   --cache <file>        Lab disk cache (default: per-machine file)
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/smite.h"

using namespace smite;

namespace {

struct Options {
    sim::MachineConfig machine = sim::MachineConfig::ivyBridge();
    core::CoLocationMode mode = core::CoLocationMode::kSmt;
    bool trainEven = true;
    std::string cacheFile;
    std::vector<std::string> positional;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <machines|workloads|solo|characterize|"
                 "predict> [args] [--machine ivb|snb] [--mode smt|cmp]"
                 " [--train even|odd] [--cache FILE]\n",
                 argv0);
    return 2;
}

bool
parse(int argc, char **argv, Options &opts)
{
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--machine") {
            const char *v = next();
            if (v == nullptr)
                return false;
            if (std::strcmp(v, "ivb") == 0)
                opts.machine = sim::MachineConfig::ivyBridge();
            else if (std::strcmp(v, "snb") == 0)
                opts.machine = sim::MachineConfig::sandyBridgeEN();
            else
                return false;
        } else if (arg == "--mode") {
            const char *v = next();
            if (v == nullptr)
                return false;
            if (std::strcmp(v, "smt") == 0)
                opts.mode = core::CoLocationMode::kSmt;
            else if (std::strcmp(v, "cmp") == 0)
                opts.mode = core::CoLocationMode::kCmp;
            else
                return false;
        } else if (arg == "--train") {
            const char *v = next();
            if (v == nullptr)
                return false;
            opts.trainEven = std::strcmp(v, "even") == 0;
        } else if (arg == "--cache") {
            const char *v = next();
            if (v == nullptr)
                return false;
            opts.cacheFile = v;
        } else if (!arg.empty() && arg[0] == '-') {
            return false;
        } else {
            opts.positional.push_back(arg);
        }
    }
    return true;
}

const workload::WorkloadProfile &
lookup(const std::string &name)
{
    for (const auto &p : workload::spec2006::all()) {
        if (p.name == name)
            return p;
    }
    return workload::cloudsuite::byName(name);
}

core::Lab
makeLab(const Options &opts)
{
    std::string path = opts.cacheFile;
    if (path.empty()) {
        path = "smite_lab_cache_" +
               (opts.machine.numCores == 6
                    ? std::string("Sandy_Bridge_EN")
                    : std::string("Ivy_Bridge")) +
               ".txt";
    }
    // Returned as a prvalue: the Lab is non-movable (its memo caches
    // carry synchronization state).
    return core::Lab(opts.machine, path);
}

int
cmdMachines()
{
    for (const auto &config : {sim::MachineConfig::ivyBridge(),
                               sim::MachineConfig::sandyBridgeEN()}) {
        std::printf("%-5s %-32s %d cores x %d contexts, L3 %lluMB\n",
                    config.numCores == 6 ? "snb" : "ivb",
                    config.name.c_str(), config.numCores,
                    config.contextsPerCore,
                    static_cast<unsigned long long>(
                        config.l3.sizeBytes >> 20));
    }
    return 0;
}

int
cmdWorkloads()
{
    std::printf("SPEC CPU2006 (29):\n");
    for (const auto &p : workload::spec2006::all()) {
        std::printf("  %-16s %s\n", p.name.c_str(),
                    workload::suiteName(p.suite));
    }
    std::printf("CloudSuite (4):\n");
    for (const auto &p : workload::cloudsuite::all()) {
        std::printf("  %-16s latency-sensitive%s\n", p.name.c_str(),
                    p.reportsPercentile ? ", reports percentiles" : "");
    }
    return 0;
}

int
cmdSolo(const Options &opts)
{
    if (opts.positional.size() != 1)
        return 2;
    core::Lab lab = makeLab(opts);
    const auto &app = lookup(opts.positional[0]);
    std::printf("%s on %s\n", app.name.c_str(),
                opts.machine.name.c_str());
    std::printf("  solo IPC: %.3f\n", lab.soloIpc(app));
    const auto rates = lab.pmuProfile(app);
    for (int r = 0; r < sim::kNumPmuRates; ++r) {
        std::printf("  %-28s %.5f\n", sim::kPmuRateNames[r].data(),
                    rates[r]);
    }
    return 0;
}

int
cmdCharacterize(const Options &opts)
{
    if (opts.positional.size() != 1)
        return 2;
    core::Lab lab = makeLab(opts);
    const auto &app = lookup(opts.positional[0]);
    const auto &c = lab.characterization(app, opts.mode);
    std::printf("%s (%s co-location on %s)\n", app.name.c_str(),
                core::modeName(opts.mode), opts.machine.name.c_str());
    std::printf("  %-14s %12s %16s\n", "dimension", "sensitivity",
                "contentiousness");
    for (int d = 0; d < rulers::kNumDimensions; ++d) {
        std::printf("  %-14s %11.1f%% %15.1f%%\n",
                    rulers::dimensionName(
                        rulers::kAllDimensions[d]).data(),
                    100 * c.sensitivity[d],
                    100 * c.contentiousness[d]);
    }
    return 0;
}

int
cmdPredict(const Options &opts)
{
    if (opts.positional.size() != 2)
        return 2;
    core::Lab lab = makeLab(opts);
    const auto &victim = lookup(opts.positional[0]);
    const auto &aggressor = lookup(opts.positional[1]);

    const auto training = opts.trainEven
                              ? workload::spec2006::evenNumbered()
                              : workload::spec2006::oddNumbered();
    std::fprintf(stderr, "training Equation 3 on the %s-numbered SPEC "
                 "benchmarks...\n", opts.trainEven ? "even" : "odd");
    const core::SmiteModel model = lab.trainSmite(training, opts.mode);

    const double predicted = model.predict(
        lab.characterization(victim, opts.mode),
        lab.characterization(aggressor, opts.mode));
    const double measured =
        lab.pairDegradation(victim, aggressor, opts.mode);
    std::printf("%s co-located with %s (%s):\n", victim.name.c_str(),
                aggressor.name.c_str(), core::modeName(opts.mode));
    std::printf("  predicted degradation: %6.2f%%\n", 100 * predicted);
    std::printf("  measured degradation:  %6.2f%%\n", 100 * measured);
    std::printf("  absolute error:        %6.2f%%\n",
                100 * std::abs(predicted - measured));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    Options opts;
    if (!parse(argc, argv, opts))
        return usage(argv[0]);

    const std::string command = argv[1];
    try {
        if (command == "machines")
            return cmdMachines();
        if (command == "workloads")
            return cmdWorkloads();
        if (command == "solo")
            return cmdSolo(opts) == 2 ? usage(argv[0]) : 0;
        if (command == "characterize")
            return cmdCharacterize(opts) == 2 ? usage(argv[0]) : 0;
        if (command == "predict")
            return cmdPredict(opts) == 2 ? usage(argv[0]) : 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage(argv[0]);
}
