# Empty compiler generated dependencies file for bench_fig13_tail_latency_prediction.
# This may be replaced when dependencies are built.
