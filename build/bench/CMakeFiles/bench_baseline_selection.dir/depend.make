# Empty dependencies file for bench_baseline_selection.
# This may be replaced when dependencies are built.
