file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_violations_avgperf.dir/bench_fig15_violations_avgperf.cpp.o"
  "CMakeFiles/bench_fig15_violations_avgperf.dir/bench_fig15_violations_avgperf.cpp.o.d"
  "bench_fig15_violations_avgperf"
  "bench_fig15_violations_avgperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_violations_avgperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
