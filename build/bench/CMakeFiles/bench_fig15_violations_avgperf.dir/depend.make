# Empty dependencies file for bench_fig15_violations_avgperf.
# This may be replaced when dependencies are built.
