# Empty compiler generated dependencies file for bench_fig04_mem_sensitivity.
# This may be replaced when dependencies are built.
