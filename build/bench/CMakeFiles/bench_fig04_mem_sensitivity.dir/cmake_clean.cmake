file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_mem_sensitivity.dir/bench_fig04_mem_sensitivity.cpp.o"
  "CMakeFiles/bench_fig04_mem_sensitivity.dir/bench_fig04_mem_sensitivity.cpp.o.d"
  "bench_fig04_mem_sensitivity"
  "bench_fig04_mem_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_mem_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
