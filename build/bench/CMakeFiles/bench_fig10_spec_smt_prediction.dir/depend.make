# Empty dependencies file for bench_fig10_spec_smt_prediction.
# This may be replaced when dependencies are built.
