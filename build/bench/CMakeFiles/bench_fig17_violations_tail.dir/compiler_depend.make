# Empty compiler generated dependencies file for bench_fig17_violations_tail.
# This may be replaced when dependencies are built.
