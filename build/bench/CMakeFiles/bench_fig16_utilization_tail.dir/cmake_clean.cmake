file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_utilization_tail.dir/bench_fig16_utilization_tail.cpp.o"
  "CMakeFiles/bench_fig16_utilization_tail.dir/bench_fig16_utilization_tail.cpp.o.d"
  "bench_fig16_utilization_tail"
  "bench_fig16_utilization_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_utilization_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
