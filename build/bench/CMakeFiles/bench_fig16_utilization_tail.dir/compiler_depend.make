# Empty compiler generated dependencies file for bench_fig16_utilization_tail.
# This may be replaced when dependencies are built.
