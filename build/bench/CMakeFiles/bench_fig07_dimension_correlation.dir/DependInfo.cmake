
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig07_dimension_correlation.cpp" "bench/CMakeFiles/bench_fig07_dimension_correlation.dir/bench_fig07_dimension_correlation.cpp.o" "gcc" "bench/CMakeFiles/bench_fig07_dimension_correlation.dir/bench_fig07_dimension_correlation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/smite_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduler/CMakeFiles/smite_scheduler.dir/DependInfo.cmake"
  "/root/repo/build/src/tco/CMakeFiles/smite_tco.dir/DependInfo.cmake"
  "/root/repo/build/src/rulers/CMakeFiles/smite_rulers.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/smite_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/smite_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/smite_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smite_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
