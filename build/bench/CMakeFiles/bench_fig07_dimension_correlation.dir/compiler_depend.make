# Empty compiler generated dependencies file for bench_fig07_dimension_correlation.
# This may be replaced when dependencies are built.
