file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_spec_cmp_prediction.dir/bench_fig11_spec_cmp_prediction.cpp.o"
  "CMakeFiles/bench_fig11_spec_cmp_prediction.dir/bench_fig11_spec_cmp_prediction.cpp.o.d"
  "bench_fig11_spec_cmp_prediction"
  "bench_fig11_spec_cmp_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_spec_cmp_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
