# Empty compiler generated dependencies file for bench_fig05_mem_port_utilization.
# This may be replaced when dependencies are built.
