# Empty dependencies file for bench_fig06_characterization_summary.
# This may be replaced when dependencies are built.
