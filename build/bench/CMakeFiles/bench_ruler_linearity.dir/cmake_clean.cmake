file(REMOVE_RECURSE
  "CMakeFiles/bench_ruler_linearity.dir/bench_ruler_linearity.cpp.o"
  "CMakeFiles/bench_ruler_linearity.dir/bench_ruler_linearity.cpp.o.d"
  "bench_ruler_linearity"
  "bench_ruler_linearity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ruler_linearity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
