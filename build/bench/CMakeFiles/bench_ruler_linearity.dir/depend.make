# Empty dependencies file for bench_ruler_linearity.
# This may be replaced when dependencies are built.
