# Empty compiler generated dependencies file for bench_fig02_fu_sensitivity.
# This may be replaced when dependencies are built.
