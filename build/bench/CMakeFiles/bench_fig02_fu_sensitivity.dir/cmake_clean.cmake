file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_fu_sensitivity.dir/bench_fig02_fu_sensitivity.cpp.o"
  "CMakeFiles/bench_fig02_fu_sensitivity.dir/bench_fig02_fu_sensitivity.cpp.o.d"
  "bench_fig02_fu_sensitivity"
  "bench_fig02_fu_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_fu_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
