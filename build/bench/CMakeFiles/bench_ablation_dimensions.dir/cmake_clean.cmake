file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dimensions.dir/bench_ablation_dimensions.cpp.o"
  "CMakeFiles/bench_ablation_dimensions.dir/bench_ablation_dimensions.cpp.o.d"
  "bench_ablation_dimensions"
  "bench_ablation_dimensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dimensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
