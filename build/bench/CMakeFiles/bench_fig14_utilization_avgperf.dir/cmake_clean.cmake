file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_utilization_avgperf.dir/bench_fig14_utilization_avgperf.cpp.o"
  "CMakeFiles/bench_fig14_utilization_avgperf.dir/bench_fig14_utilization_avgperf.cpp.o.d"
  "bench_fig14_utilization_avgperf"
  "bench_fig14_utilization_avgperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_utilization_avgperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
