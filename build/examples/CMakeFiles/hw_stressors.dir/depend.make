# Empty dependencies file for hw_stressors.
# This may be replaced when dependencies are built.
