file(REMOVE_RECURSE
  "CMakeFiles/hw_stressors.dir/hw_stressors.cpp.o"
  "CMakeFiles/hw_stressors.dir/hw_stressors.cpp.o.d"
  "hw_stressors"
  "hw_stressors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_stressors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
