
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/des.cpp" "src/queueing/CMakeFiles/smite_queueing.dir/des.cpp.o" "gcc" "src/queueing/CMakeFiles/smite_queueing.dir/des.cpp.o.d"
  "/root/repo/src/queueing/mm1.cpp" "src/queueing/CMakeFiles/smite_queueing.dir/mm1.cpp.o" "gcc" "src/queueing/CMakeFiles/smite_queueing.dir/mm1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/smite_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smite_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
