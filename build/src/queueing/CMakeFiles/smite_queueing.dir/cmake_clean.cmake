file(REMOVE_RECURSE
  "CMakeFiles/smite_queueing.dir/des.cpp.o"
  "CMakeFiles/smite_queueing.dir/des.cpp.o.d"
  "CMakeFiles/smite_queueing.dir/mm1.cpp.o"
  "CMakeFiles/smite_queueing.dir/mm1.cpp.o.d"
  "libsmite_queueing.a"
  "libsmite_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smite_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
