# Empty dependencies file for smite_queueing.
# This may be replaced when dependencies are built.
