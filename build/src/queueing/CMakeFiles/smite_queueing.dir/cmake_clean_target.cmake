file(REMOVE_RECURSE
  "libsmite_queueing.a"
)
