
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/smite_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/smite_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/smite_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/smite_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/context.cpp" "src/sim/CMakeFiles/smite_sim.dir/context.cpp.o" "gcc" "src/sim/CMakeFiles/smite_sim.dir/context.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/smite_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/smite_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/memory_system.cpp" "src/sim/CMakeFiles/smite_sim.dir/memory_system.cpp.o" "gcc" "src/sim/CMakeFiles/smite_sim.dir/memory_system.cpp.o.d"
  "/root/repo/src/sim/smt_core.cpp" "src/sim/CMakeFiles/smite_sim.dir/smt_core.cpp.o" "gcc" "src/sim/CMakeFiles/smite_sim.dir/smt_core.cpp.o.d"
  "/root/repo/src/sim/tlb.cpp" "src/sim/CMakeFiles/smite_sim.dir/tlb.cpp.o" "gcc" "src/sim/CMakeFiles/smite_sim.dir/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
