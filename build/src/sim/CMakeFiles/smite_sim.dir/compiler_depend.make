# Empty compiler generated dependencies file for smite_sim.
# This may be replaced when dependencies are built.
