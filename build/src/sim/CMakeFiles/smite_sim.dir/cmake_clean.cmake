file(REMOVE_RECURSE
  "CMakeFiles/smite_sim.dir/cache.cpp.o"
  "CMakeFiles/smite_sim.dir/cache.cpp.o.d"
  "CMakeFiles/smite_sim.dir/config.cpp.o"
  "CMakeFiles/smite_sim.dir/config.cpp.o.d"
  "CMakeFiles/smite_sim.dir/context.cpp.o"
  "CMakeFiles/smite_sim.dir/context.cpp.o.d"
  "CMakeFiles/smite_sim.dir/machine.cpp.o"
  "CMakeFiles/smite_sim.dir/machine.cpp.o.d"
  "CMakeFiles/smite_sim.dir/memory_system.cpp.o"
  "CMakeFiles/smite_sim.dir/memory_system.cpp.o.d"
  "CMakeFiles/smite_sim.dir/smt_core.cpp.o"
  "CMakeFiles/smite_sim.dir/smt_core.cpp.o.d"
  "CMakeFiles/smite_sim.dir/tlb.cpp.o"
  "CMakeFiles/smite_sim.dir/tlb.cpp.o.d"
  "libsmite_sim.a"
  "libsmite_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smite_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
