file(REMOVE_RECURSE
  "libsmite_sim.a"
)
