# Empty compiler generated dependencies file for smite_workload.
# This may be replaced when dependencies are built.
