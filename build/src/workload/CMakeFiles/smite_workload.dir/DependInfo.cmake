
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/cloudsuite.cpp" "src/workload/CMakeFiles/smite_workload.dir/cloudsuite.cpp.o" "gcc" "src/workload/CMakeFiles/smite_workload.dir/cloudsuite.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/smite_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/smite_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/spec2006.cpp" "src/workload/CMakeFiles/smite_workload.dir/spec2006.cpp.o" "gcc" "src/workload/CMakeFiles/smite_workload.dir/spec2006.cpp.o.d"
  "/root/repo/src/workload/trace_file.cpp" "src/workload/CMakeFiles/smite_workload.dir/trace_file.cpp.o" "gcc" "src/workload/CMakeFiles/smite_workload.dir/trace_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/smite_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
