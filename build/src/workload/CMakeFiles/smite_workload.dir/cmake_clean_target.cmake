file(REMOVE_RECURSE
  "libsmite_workload.a"
)
