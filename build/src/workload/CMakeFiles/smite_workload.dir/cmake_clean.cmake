file(REMOVE_RECURSE
  "CMakeFiles/smite_workload.dir/cloudsuite.cpp.o"
  "CMakeFiles/smite_workload.dir/cloudsuite.cpp.o.d"
  "CMakeFiles/smite_workload.dir/generator.cpp.o"
  "CMakeFiles/smite_workload.dir/generator.cpp.o.d"
  "CMakeFiles/smite_workload.dir/spec2006.cpp.o"
  "CMakeFiles/smite_workload.dir/spec2006.cpp.o.d"
  "CMakeFiles/smite_workload.dir/trace_file.cpp.o"
  "CMakeFiles/smite_workload.dir/trace_file.cpp.o.d"
  "libsmite_workload.a"
  "libsmite_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smite_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
