# Empty compiler generated dependencies file for smite_hwrulers.
# This may be replaced when dependencies are built.
