file(REMOVE_RECURSE
  "CMakeFiles/smite_hwrulers.dir/fu_stressors.cpp.o"
  "CMakeFiles/smite_hwrulers.dir/fu_stressors.cpp.o.d"
  "CMakeFiles/smite_hwrulers.dir/mem_stressors.cpp.o"
  "CMakeFiles/smite_hwrulers.dir/mem_stressors.cpp.o.d"
  "CMakeFiles/smite_hwrulers.dir/topology.cpp.o"
  "CMakeFiles/smite_hwrulers.dir/topology.cpp.o.d"
  "libsmite_hwrulers.a"
  "libsmite_hwrulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smite_hwrulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
