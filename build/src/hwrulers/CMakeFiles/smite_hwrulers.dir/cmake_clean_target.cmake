file(REMOVE_RECURSE
  "libsmite_hwrulers.a"
)
