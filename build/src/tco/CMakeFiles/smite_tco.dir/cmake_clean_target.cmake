file(REMOVE_RECURSE
  "libsmite_tco.a"
)
