# Empty dependencies file for smite_tco.
# This may be replaced when dependencies are built.
