file(REMOVE_RECURSE
  "CMakeFiles/smite_tco.dir/tco.cpp.o"
  "CMakeFiles/smite_tco.dir/tco.cpp.o.d"
  "libsmite_tco.a"
  "libsmite_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smite_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
