file(REMOVE_RECURSE
  "CMakeFiles/smite_scheduler.dir/cluster.cpp.o"
  "CMakeFiles/smite_scheduler.dir/cluster.cpp.o.d"
  "libsmite_scheduler.a"
  "libsmite_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smite_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
