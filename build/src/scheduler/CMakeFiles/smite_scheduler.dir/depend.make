# Empty dependencies file for smite_scheduler.
# This may be replaced when dependencies are built.
