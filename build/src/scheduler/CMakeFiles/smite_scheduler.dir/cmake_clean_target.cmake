file(REMOVE_RECURSE
  "libsmite_scheduler.a"
)
