file(REMOVE_RECURSE
  "libsmite_core.a"
)
