# Empty dependencies file for smite_core.
# This may be replaced when dependencies are built.
