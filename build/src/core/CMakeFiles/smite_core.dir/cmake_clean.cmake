file(REMOVE_RECURSE
  "CMakeFiles/smite_core.dir/characterize.cpp.o"
  "CMakeFiles/smite_core.dir/characterize.cpp.o.d"
  "CMakeFiles/smite_core.dir/experiment.cpp.o"
  "CMakeFiles/smite_core.dir/experiment.cpp.o.d"
  "CMakeFiles/smite_core.dir/pmu_model.cpp.o"
  "CMakeFiles/smite_core.dir/pmu_model.cpp.o.d"
  "CMakeFiles/smite_core.dir/sensitivity_curve.cpp.o"
  "CMakeFiles/smite_core.dir/sensitivity_curve.cpp.o.d"
  "CMakeFiles/smite_core.dir/smite_model.cpp.o"
  "CMakeFiles/smite_core.dir/smite_model.cpp.o.d"
  "CMakeFiles/smite_core.dir/tail_latency.cpp.o"
  "CMakeFiles/smite_core.dir/tail_latency.cpp.o.d"
  "libsmite_core.a"
  "libsmite_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smite_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
