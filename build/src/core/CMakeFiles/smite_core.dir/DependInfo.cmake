
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/characterize.cpp" "src/core/CMakeFiles/smite_core.dir/characterize.cpp.o" "gcc" "src/core/CMakeFiles/smite_core.dir/characterize.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/smite_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/smite_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/pmu_model.cpp" "src/core/CMakeFiles/smite_core.dir/pmu_model.cpp.o" "gcc" "src/core/CMakeFiles/smite_core.dir/pmu_model.cpp.o.d"
  "/root/repo/src/core/sensitivity_curve.cpp" "src/core/CMakeFiles/smite_core.dir/sensitivity_curve.cpp.o" "gcc" "src/core/CMakeFiles/smite_core.dir/sensitivity_curve.cpp.o.d"
  "/root/repo/src/core/smite_model.cpp" "src/core/CMakeFiles/smite_core.dir/smite_model.cpp.o" "gcc" "src/core/CMakeFiles/smite_core.dir/smite_model.cpp.o.d"
  "/root/repo/src/core/tail_latency.cpp" "src/core/CMakeFiles/smite_core.dir/tail_latency.cpp.o" "gcc" "src/core/CMakeFiles/smite_core.dir/tail_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/smite_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/smite_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/rulers/CMakeFiles/smite_rulers.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/smite_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/smite_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
