file(REMOVE_RECURSE
  "CMakeFiles/smite_rulers.dir/ruler.cpp.o"
  "CMakeFiles/smite_rulers.dir/ruler.cpp.o.d"
  "libsmite_rulers.a"
  "libsmite_rulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smite_rulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
