file(REMOVE_RECURSE
  "libsmite_rulers.a"
)
