# Empty compiler generated dependencies file for smite_rulers.
# This may be replaced when dependencies are built.
