# Empty compiler generated dependencies file for smite_stats.
# This may be replaced when dependencies are built.
