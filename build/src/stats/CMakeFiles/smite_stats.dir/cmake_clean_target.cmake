file(REMOVE_RECURSE
  "libsmite_stats.a"
)
