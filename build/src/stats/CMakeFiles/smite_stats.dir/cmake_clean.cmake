file(REMOVE_RECURSE
  "CMakeFiles/smite_stats.dir/correlation.cpp.o"
  "CMakeFiles/smite_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/smite_stats.dir/decision_tree.cpp.o"
  "CMakeFiles/smite_stats.dir/decision_tree.cpp.o.d"
  "CMakeFiles/smite_stats.dir/regression.cpp.o"
  "CMakeFiles/smite_stats.dir/regression.cpp.o.d"
  "CMakeFiles/smite_stats.dir/summary.cpp.o"
  "CMakeFiles/smite_stats.dir/summary.cpp.o.d"
  "libsmite_stats.a"
  "libsmite_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smite_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
