# Empty compiler generated dependencies file for test_hwrulers.
# This may be replaced when dependencies are built.
