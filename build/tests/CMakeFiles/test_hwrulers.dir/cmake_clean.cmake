file(REMOVE_RECURSE
  "CMakeFiles/test_hwrulers.dir/test_hwrulers.cpp.o"
  "CMakeFiles/test_hwrulers.dir/test_hwrulers.cpp.o.d"
  "test_hwrulers"
  "test_hwrulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hwrulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
