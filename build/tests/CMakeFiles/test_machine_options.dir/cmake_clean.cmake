file(REMOVE_RECURSE
  "CMakeFiles/test_machine_options.dir/test_machine_options.cpp.o"
  "CMakeFiles/test_machine_options.dir/test_machine_options.cpp.o.d"
  "test_machine_options"
  "test_machine_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
