# Empty compiler generated dependencies file for test_machine_options.
# This may be replaced when dependencies are built.
