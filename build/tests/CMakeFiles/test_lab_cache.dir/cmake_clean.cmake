file(REMOVE_RECURSE
  "CMakeFiles/test_lab_cache.dir/test_lab_cache.cpp.o"
  "CMakeFiles/test_lab_cache.dir/test_lab_cache.cpp.o.d"
  "test_lab_cache"
  "test_lab_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lab_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
