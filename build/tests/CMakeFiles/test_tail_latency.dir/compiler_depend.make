# Empty compiler generated dependencies file for test_tail_latency.
# This may be replaced when dependencies are built.
