file(REMOVE_RECURSE
  "CMakeFiles/test_tail_latency.dir/test_tail_latency.cpp.o"
  "CMakeFiles/test_tail_latency.dir/test_tail_latency.cpp.o.d"
  "test_tail_latency"
  "test_tail_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
