# Empty dependencies file for test_rulers.
# This may be replaced when dependencies are built.
