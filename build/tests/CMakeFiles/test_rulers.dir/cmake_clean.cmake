file(REMOVE_RECURSE
  "CMakeFiles/test_rulers.dir/test_rulers.cpp.o"
  "CMakeFiles/test_rulers.dir/test_rulers.cpp.o.d"
  "test_rulers"
  "test_rulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
