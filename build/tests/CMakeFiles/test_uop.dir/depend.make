# Empty dependencies file for test_uop.
# This may be replaced when dependencies are built.
