file(REMOVE_RECURSE
  "CMakeFiles/test_uop.dir/test_uop.cpp.o"
  "CMakeFiles/test_uop.dir/test_uop.cpp.o.d"
  "test_uop"
  "test_uop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
