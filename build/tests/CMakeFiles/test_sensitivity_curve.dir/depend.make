# Empty dependencies file for test_sensitivity_curve.
# This may be replaced when dependencies are built.
