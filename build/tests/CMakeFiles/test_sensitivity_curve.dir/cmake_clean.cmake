file(REMOVE_RECURSE
  "CMakeFiles/test_sensitivity_curve.dir/test_sensitivity_curve.cpp.o"
  "CMakeFiles/test_sensitivity_curve.dir/test_sensitivity_curve.cpp.o.d"
  "test_sensitivity_curve"
  "test_sensitivity_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensitivity_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
