# Empty dependencies file for test_tlb_dram.
# This may be replaced when dependencies are built.
