file(REMOVE_RECURSE
  "CMakeFiles/test_tlb_dram.dir/test_tlb_dram.cpp.o"
  "CMakeFiles/test_tlb_dram.dir/test_tlb_dram.cpp.o.d"
  "test_tlb_dram"
  "test_tlb_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tlb_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
