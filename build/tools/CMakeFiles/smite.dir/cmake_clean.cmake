file(REMOVE_RECURSE
  "CMakeFiles/smite.dir/smite_cli.cpp.o"
  "CMakeFiles/smite.dir/smite_cli.cpp.o.d"
  "smite"
  "smite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
