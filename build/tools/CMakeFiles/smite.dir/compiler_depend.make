# Empty compiler generated dependencies file for smite.
# This may be replaced when dependencies are built.
