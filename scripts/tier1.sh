#!/usr/bin/env bash
# Tier-1 verification: full build + test suite (parallel ctest), then
# a ThreadSanitizer pass over the parallel measurement engine.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

cmake -B build -S .
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

# Data-race check: the parallel engine's tests under TSan.
cmake -B build-tsan -S . -DSMITE_TSAN=ON
cmake --build build-tsan -j"$JOBS" --target test_parallel
./build-tsan/tests/test_parallel
