#!/usr/bin/env bash
# Tier-1 verification: full build + test suite (parallel ctest), a
# ThreadSanitizer pass over the parallel measurement engine, an
# observability smoke run (trace + report emission, validated and
# cross-checked against the documented catalog), and a markdown link
# check over the top-level docs.
set -euo pipefail
cd "$(dirname "$0")/.."
REPO="$PWD"

JOBS="${JOBS:-$(nproc)}"

cmake -B build -S .
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

# Data-race check: the parallel engine's tests under TSan.
cmake -B build-tsan -S . -DSMITE_TSAN=ON
cmake --build build-tsan -j"$JOBS" --target test_parallel
./build-tsan/tests/test_parallel

# --- Observability smoke -------------------------------------------
# Run one real figure harness with tracing + metrics on (tiny
# simulation intervals so it finishes in seconds; the non-default
# intervals get their own scratch disk cache), validate both emitted
# artifacts, and grep every span/metric name the run produced against
# the catalog in docs/OBSERVABILITY.md.
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
(
    cd "$OBS_DIR"
    SMITE_TRACE=1 SMITE_METRICS=1 \
    SMITE_BENCH_WARMUP=2000 SMITE_BENCH_MEASURE=8000 \
        "$REPO/build/bench/bench_fig10_spec_smt_prediction" \
        > fig10.stdout

    "$REPO/build/tools/obs_check" trace \
        bench_fig10_spec_smt_prediction.trace.json > names.txt
    "$REPO/build/tools/obs_check" report \
        bench_fig10_spec_smt_prediction.report.json >> names.txt

    missing=0
    while read -r name; do
        if ! grep -qF "\`$name\`" "$REPO/docs/OBSERVABILITY.md"; then
            echo "undocumented observability name: $name" >&2
            missing=1
        fi
    done < names.txt
    [ "$missing" -eq 0 ]

    # With both variables unset, a harness must emit nothing.
    "$REPO/build/bench/bench_table1_machines" > /dev/null
    if ls ./*.trace.json ./*.report.json 2>/dev/null |
        grep -q table1; then
        echo "artifacts emitted without SMITE_TRACE/SMITE_METRICS" >&2
        exit 1
    fi
)
echo "observability smoke: ok"

# --- Markdown link check -------------------------------------------
# Every relative link target in the top-level docs must exist.
bad_links=0
for doc in README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md; do
    dir="$(dirname "$doc")"
    while read -r target; do
        case "$target" in
        http://* | https://* | "#"*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "$doc: broken link -> $target" >&2
            bad_links=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$doc" 2>/dev/null |
        sed -E 's/^\]\(//; s/\)$//')
done
[ "$bad_links" -eq 0 ]
echo "markdown links: ok"
