#!/usr/bin/env bash
# Tier-1 verification: full build + test suite (parallel ctest), a
# ThreadSanitizer pass over the parallel measurement engine, an
# observability smoke run (trace + report emission, validated and
# cross-checked against the documented catalog), and a markdown link
# check over the top-level docs.
set -euo pipefail
cd "$(dirname "$0")/.."
REPO="$PWD"

JOBS="${JOBS:-$(nproc)}"

cmake -B build -S .
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

# Data-race check: the parallel engine's tests under TSan.
cmake -B build-tsan -S . -DSMITE_TSAN=ON
cmake --build build-tsan -j"$JOBS" --target test_parallel
./build-tsan/tests/test_parallel

# --- Observability smoke -------------------------------------------
# Run one real figure harness with tracing + metrics on (tiny
# simulation intervals so it finishes in seconds; the non-default
# intervals get their own scratch disk cache), validate both emitted
# artifacts, and grep every span/metric name the run produced against
# the catalog in docs/OBSERVABILITY.md.
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
(
    cd "$OBS_DIR"
    SMITE_TRACE=1 SMITE_METRICS=1 \
    SMITE_BENCH_WARMUP=2000 SMITE_BENCH_MEASURE=8000 \
        "$REPO/build/bench/bench_fig10_spec_smt_prediction" \
        > fig10.stdout

    "$REPO/build/tools/obs_check" trace \
        bench_fig10_spec_smt_prediction.trace.json > names.txt
    "$REPO/build/tools/obs_check" report \
        bench_fig10_spec_smt_prediction.report.json >> names.txt

    missing=0
    while read -r name; do
        if ! grep -qF "\`$name\`" "$REPO/docs/OBSERVABILITY.md"; then
            echo "undocumented observability name: $name" >&2
            missing=1
        fi
    done < names.txt
    [ "$missing" -eq 0 ]

    # With both variables unset, a harness must emit nothing.
    "$REPO/build/bench/bench_table1_machines" > /dev/null
    if ls ./*.trace.json ./*.report.json 2>/dev/null |
        grep -q table1; then
        echo "artifacts emitted without SMITE_TRACE/SMITE_METRICS" >&2
        exit 1
    fi
)
echo "observability smoke: ok"

# --- Chaos smoke ---------------------------------------------------
# The same harness under a four-site fault plan must complete without
# aborting, and the injected-fault / retry counters must be non-zero
# (docs/ROBUSTNESS.md). Runs in a fresh directory so the chaos run
# never shares a disk cache with the clean runs below.
CHAOS_DIR="$(mktemp -d)"
(
    cd "$CHAOS_DIR"
    SMITE_METRICS=1 \
    SMITE_FAULTS='machine.jitter:p=1,sigma=0.05,seed=7;lab.measure:p=0.15,seed=11;disk.corrupt:p=0.2,seed=5;pool.delay:p=0.05,us=50,seed=3' \
    SMITE_BENCH_WARMUP=2000 SMITE_BENCH_MEASURE=8000 \
        "$REPO/build/bench/bench_fig10_spec_smt_prediction" \
        > chaos.stdout

    "$REPO/build/tools/obs_check" report \
        bench_fig10_spec_smt_prediction.report.json \
        --nonzero lab.retries \
        fault.machine.jitter.injected \
        fault.lab.measure.injected \
        fault.disk.corrupt.injected > /dev/null
)
rm -rf "$CHAOS_DIR"
echo "chaos smoke: ok"

# --- Online scheduler determinism gate ------------------------------
# The online co-location policy under a pinned churn + observation-
# noise plan must be a pure function of the armed seeds: two runs in
# fresh directories — one with the default thread pool, one forced
# serial — must produce byte-identical stdout (same pattern as the
# chaos smoke; docs/ROBUSTNESS.md).
ONLINE_PLAN='server.fail:p=0.05,seed=29;scheduler.observe:p=1,sigma=0.01,seed=31'
ONL_A="$(mktemp -d)"
ONL_B="$(mktemp -d)"
(
    cd "$ONL_A"
    SMITE_FAULTS="$ONLINE_PLAN" \
    SMITE_BENCH_WARMUP=2000 SMITE_BENCH_MEASURE=8000 \
        "$REPO/build/bench/bench_fig19_online_policy" > fig19.stdout
)
(
    cd "$ONL_B"
    SMITE_THREADS=1 SMITE_FAULTS="$ONLINE_PLAN" \
    SMITE_BENCH_WARMUP=2000 SMITE_BENCH_MEASURE=8000 \
        "$REPO/build/bench/bench_fig19_online_policy" > fig19.stdout
)
cmp "$ONL_A/fig19.stdout" "$ONL_B/fig19.stdout"
rm -rf "$ONL_A" "$ONL_B"
echo "online scheduler determinism: ok"

# --- Determinism check ---------------------------------------------
# With SMITE_FAULTS unset, two runs in fresh directories must produce
# byte-identical stdout — the fault layer at rest changes nothing.
DET_A="$(mktemp -d)"
DET_B="$(mktemp -d)"
for d in "$DET_A" "$DET_B"; do
    (
        cd "$d"
        SMITE_BENCH_WARMUP=2000 SMITE_BENCH_MEASURE=8000 \
            "$REPO/build/bench/bench_fig10_spec_smt_prediction" \
            > fig10.stdout
    )
done
cmp "$DET_A/fig10.stdout" "$DET_B/fig10.stdout"
rm -rf "$DET_A" "$DET_B"
echo "determinism: ok"

# --- Replay byte-identity gate --------------------------------------
# The run-level replay stores (sim/replay.h) claim byte-identity: a
# figure harness with interval memoization + warm-state snapshots on
# (the default) must produce stdout byte-identical to the same run
# with SMITE_SIM_MEMO=0 (both stores off, every interval simulated
# live). Fresh directories so neither run sees a shared disk cache.
MEMO_ON="$(mktemp -d)"
MEMO_OFF="$(mktemp -d)"
(
    cd "$MEMO_ON"
    SMITE_BENCH_WARMUP=2000 SMITE_BENCH_MEASURE=8000 \
        "$REPO/build/bench/bench_fig10_spec_smt_prediction" \
        > fig10.stdout
)
(
    cd "$MEMO_OFF"
    SMITE_SIM_MEMO=0 \
    SMITE_BENCH_WARMUP=2000 SMITE_BENCH_MEASURE=8000 \
        "$REPO/build/bench/bench_fig10_spec_smt_prediction" \
        > fig10.stdout
)
cmp "$MEMO_ON/fig10.stdout" "$MEMO_OFF/fig10.stdout"
rm -rf "$MEMO_ON" "$MEMO_OFF"
echo "replay byte-identity: ok"

# --- Simulator perf smoke ------------------------------------------
# Re-run the simulation-substrate microbenchmarks (CPU-time medians)
# and diff the fresh report against the committed baseline. The
# tolerance is deliberately generous: machine-to-machine variance
# passes, an accidental hot-path regression of the simulator (the
# quantity BENCH_sim.json exists to pin) fails with the exact metric
# that moved. Coverage spans every committed metric — solo, SMT-pair
# and CMP-pair machine shapes (cmp_pair exercises the multi-core
# wake list), their `*_nomemo` live-path counterparts (so a live-
# simulator regression can't hide behind replay hits), plus the
# cache/TLB/trace/fit kernels.
PERF_DIR="$(mktemp -d)"
(
    cd "$PERF_DIR"
    "$REPO/build/bench/bench_sim_micro" fresh.json > bench.stdout
    "$REPO/build/tools/report_diff" --tol 0.6 \
        "$REPO/BENCH_sim.json" fresh.json
)
rm -rf "$PERF_DIR"
echo "perf smoke: ok"

# --- Predictor zoo smoke -------------------------------------------
# The predictor shoot-out (core/predictor.h), three gates in one run:
#  1. bench_predictor_zoo re-runs the head-to-head at the smoke
#     intervals and report_diff checks it against the committed
#     BENCH_pred.json (MAE and signature-run costs are exactly
#     reproducible; prediction latency lives in `timings`, which is
#     never diffed);
#  2. determinism: the same run with the default pool and forced
#     serial must produce byte-identical stdout;
#  3. every predictor.* metric the fresh report emitted must appear
#     in the docs/OBSERVABILITY.md catalog (doc-drift check).
PRED_A="$(mktemp -d)"
PRED_B="$(mktemp -d)"
(
    cd "$PRED_A"
    SMITE_BENCH_WARMUP=2000 SMITE_BENCH_MEASURE=8000 \
        "$REPO/build/bench/bench_predictor_zoo" fresh_pred.json \
        > pred.stdout
    "$REPO/build/tools/report_diff" --tol 0.6 \
        "$REPO/BENCH_pred.json" fresh_pred.json

    "$REPO/build/tools/obs_check" report fresh_pred.json |
        grep '^predictor\.' > pred_names.txt || true
    missing=0
    while read -r name; do
        if ! grep -qF "\`$name\`" "$REPO/docs/OBSERVABILITY.md"; then
            echo "undocumented predictor metric: $name" >&2
            missing=1
        fi
    done < pred_names.txt
    [ "$missing" -eq 0 ]
)
(
    cd "$PRED_B"
    SMITE_THREADS=1 \
    SMITE_BENCH_WARMUP=2000 SMITE_BENCH_MEASURE=8000 \
        "$REPO/build/bench/bench_predictor_zoo" fresh_pred.json \
        > pred.stdout
)
cmp "$PRED_A/pred.stdout" "$PRED_B/pred.stdout"
rm -rf "$PRED_A" "$PRED_B"
echo "predictor zoo smoke: ok"

# --- Scheduler scale-out smoke -------------------------------------
# The warehouse-scale sharded scheduler, three gates in one run
# (docs/SCHEDULING.md):
#  1. bench_scaleout_stress re-runs the 4k/32k/128k-server sweep and
#     report_diff checks it against the committed BENCH_sched.json —
#     throughput within tolerance, and the (exactly reproducible)
#     utilization/goodput/digest results byte-stable;
#  2. its --determinism mode replays the 4k fleet at shard counts
#     1/4/16 with the default pool and forced serial, and the stdouts
#     (timings excluded by construction) must be byte-identical;
#  3. every scheduler.* metric the fresh report emitted must appear
#     in the docs/OBSERVABILITY.md catalog (doc-drift check).
SCHED_DIR="$(mktemp -d)"
(
    cd "$SCHED_DIR"
    "$REPO/build/bench/bench_scaleout_stress" fresh_sched.json \
        > sched.stdout
    "$REPO/build/tools/report_diff" --tol 0.6 \
        "$REPO/BENCH_sched.json" fresh_sched.json

    "$REPO/build/bench/bench_scaleout_stress" --determinism \
        > det_default.stdout
    SMITE_THREADS=1 "$REPO/build/bench/bench_scaleout_stress" \
        --determinism > det_serial.stdout
    cmp det_default.stdout det_serial.stdout

    "$REPO/build/tools/obs_check" report fresh_sched.json |
        grep '^scheduler\.' > sched_names.txt
    missing=0
    while read -r name; do
        if ! grep -qF "\`$name\`" "$REPO/docs/OBSERVABILITY.md"; then
            echo "undocumented scheduler metric: $name" >&2
            missing=1
        fi
    done < sched_names.txt
    [ "$missing" -eq 0 ]
)
rm -rf "$SCHED_DIR"
echo "scheduler scale-out smoke: ok"

# --- Load / knee-harness smoke -------------------------------------
# The open-loop load subsystem, three gates (docs/ROBUSTNESS.md,
# EXPERIMENTS.md):
#  1. bench_latency_vs_load re-runs the stepped sweep + knee table +
#     load-aware scheduler scenario and report_diff checks it against
#     the committed BENCH_load.json (knee QPS within tolerance, the
#     exactly-reproducible scenario counters byte-stable); every
#     loadgen.* / des.-related metric it emitted must be in the
#     docs/OBSERVABILITY.md catalog;
#  2. determinism: the same run with the default pool and forced
#     serial, in fresh directories with the same output filename,
#     must produce byte-identical stdout and report JSON;
#  3. chaos: under a pinned three-site des.* plan the harness must
#     still pass its internal monotonicity/shedding assertions, be
#     byte-deterministic across thread counts, and count injections.
LOAD_PLAN='des.server_stall:p=0.05,sigma=0.5,seed=7;des.drop:p=0.002,seed=13;des.arrival_burst:p=0.02,sigma=1.0,seed=9'
LOAD_A="$(mktemp -d)"
LOAD_B="$(mktemp -d)"
(
    cd "$LOAD_A"
    "$REPO/build/bench/bench_latency_vs_load" \
        BENCH_load.json > load.stdout
    "$REPO/build/tools/report_diff" --tol 0.6 \
        "$REPO/BENCH_load.json" BENCH_load.json

    "$REPO/build/tools/obs_check" report BENCH_load.json |
        grep -E '^(loadgen|fault\.des)\.' > load_names.txt || true
    missing=0
    while read -r name; do
        if ! grep -qF "\`$name\`" "$REPO/docs/OBSERVABILITY.md"; then
            echo "undocumented loadgen metric: $name" >&2
            missing=1
        fi
    done < load_names.txt
    [ "$missing" -eq 0 ]
)
(
    cd "$LOAD_B"
    SMITE_THREADS=1 "$REPO/build/bench/bench_latency_vs_load" \
        BENCH_load.json > load.stdout
)
cmp "$LOAD_A/load.stdout" "$LOAD_B/load.stdout"
cmp "$LOAD_A/BENCH_load.json" "$LOAD_B/BENCH_load.json"
rm -rf "$LOAD_A" "$LOAD_B"

LOAD_CA="$(mktemp -d)"
LOAD_CB="$(mktemp -d)"
(
    cd "$LOAD_CA"
    SMITE_FAULTS="$LOAD_PLAN" \
        "$REPO/build/bench/bench_latency_vs_load" \
        BENCH_load.json > load.stdout
    "$REPO/build/tools/obs_check" report BENCH_load.json \
        --nonzero fault.des.server_stall.injected \
        fault.des.drop.injected \
        fault.des.arrival_burst.injected > /dev/null
)
(
    cd "$LOAD_CB"
    SMITE_THREADS=1 SMITE_FAULTS="$LOAD_PLAN" \
        "$REPO/build/bench/bench_latency_vs_load" \
        BENCH_load.json > load.stdout
)
cmp "$LOAD_CA/load.stdout" "$LOAD_CB/load.stdout"
rm -rf "$LOAD_CA" "$LOAD_CB"
echo "load smoke: ok"

# --- Debug/Release equivalence -------------------------------------
# The optimized simulator kernels must not change a single output
# byte across optimization levels: run one figure harness from an
# asserts-on Debug build and byte-compare its stdout with the default
# (-O2, NDEBUG) build's.
cmake -B build-debug -S . -DCMAKE_BUILD_TYPE=Debug
cmake --build build-debug -j"$JOBS" \
    --target bench_fig10_spec_smt_prediction
DBG_A="$(mktemp -d)"
DBG_B="$(mktemp -d)"
(
    cd "$DBG_A"
    SMITE_BENCH_WARMUP=2000 SMITE_BENCH_MEASURE=8000 \
        "$REPO/build/bench/bench_fig10_spec_smt_prediction" > out.txt
)
(
    cd "$DBG_B"
    SMITE_BENCH_WARMUP=2000 SMITE_BENCH_MEASURE=8000 \
        "$REPO/build-debug/bench/bench_fig10_spec_smt_prediction" \
        > out.txt
)
cmp "$DBG_A/out.txt" "$DBG_B/out.txt"
rm -rf "$DBG_A" "$DBG_B"
echo "debug/release equivalence: ok"

# --- Markdown link check -------------------------------------------
# Every relative link target in the top-level docs must exist.
bad_links=0
for doc in README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md; do
    dir="$(dirname "$doc")"
    while read -r target; do
        case "$target" in
        http://* | https://* | "#"*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "$doc: broken link -> $target" >&2
            bad_links=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$doc" 2>/dev/null |
        sed -E 's/^\]\(//; s/\)$//')
done
[ "$bad_links" -eq 0 ]
echo "markdown links: ok"
